package workloads

import (
	"math"
	"testing"

	"specrecon/internal/core"
	"specrecon/internal/ir"
	"specrecon/internal/simt"
)

// sameWord accepts bitwise equality or float closeness: kernels with
// floating-point atomics (gpu-mcml) accumulate in lane order, and
// convergence barriers legitimately reorder lanes, changing rounding.
func sameWord(a, b uint64) bool {
	if a == b {
		return true
	}
	fa, fb := math.Float64frombits(a), math.Float64frombits(b)
	if math.IsNaN(fa) && math.IsNaN(fb) {
		return true
	}
	diff := math.Abs(fa - fb)
	scale := math.Max(math.Abs(fa), math.Abs(fb))
	return diff <= 1e-9*math.Max(scale, 1)
}

// TestAllWorkloadsRunBaseline builds every workload, compiles it with
// baseline PDOM synchronization, and runs it in strict mode.
func TestAllWorkloadsRunBaseline(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst := w.Build(BuildConfig{})
			if err := ir.VerifyModule(inst.Module); err != nil {
				t.Fatalf("module invalid: %v", err)
			}
			comp, err := core.Compile(inst.Module, core.BaselineOptions())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res, err := simt.Run(comp.Module, simt.Config{
				Kernel: inst.Kernel, Threads: inst.Threads,
				Seed: inst.Seed, Memory: inst.Memory, Strict: true,
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			eff := res.Metrics.SIMTEfficiency()
			t.Logf("%s baseline: %s", w.Name, res.Metrics.String())
			if eff <= 0 || eff > 1 {
				t.Errorf("nonsensical SIMT efficiency %f", eff)
			}
		})
	}
}

// TestAnnotatedWorkloadsImprove compiles each annotated workload with
// speculative reconvergence and checks semantics are preserved and
// SIMT efficiency improves.
func TestAnnotatedWorkloadsImprove(t *testing.T) {
	for _, w := range Annotated() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst := w.Build(BuildConfig{})
			base, err := core.Compile(inst.Module, core.BaselineOptions())
			if err != nil {
				t.Fatalf("baseline compile: %v", err)
			}
			spec, err := core.Compile(inst.Module, core.SpecReconOptions())
			if err != nil {
				t.Fatalf("spec compile: %v", err)
			}
			runCfg := simt.Config{Kernel: inst.Kernel, Threads: inst.Threads, Seed: inst.Seed, Memory: inst.Memory, Strict: true}
			rb, err := simt.Run(base.Module, runCfg)
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			rs, err := simt.Run(spec.Module, runCfg)
			if err != nil {
				t.Fatalf("spec run: %v", err)
			}
			for i := range rb.Memory {
				if !sameWord(rb.Memory[i], rs.Memory[i]) {
					t.Fatalf("memory word %d differs: baseline %x spec %x", i, rb.Memory[i], rs.Memory[i])
				}
			}
			be, se := rb.Metrics.SIMTEfficiency(), rs.Metrics.SIMTEfficiency()
			speedup := float64(rb.Metrics.Cycles) / float64(rs.Metrics.Cycles)
			t.Logf("%s: eff %.1f%% -> %.1f%%, speedup %.2fx (issues %d -> %d)",
				w.Name, 100*be, 100*se, speedup, rb.Metrics.Issues, rs.Metrics.Issues)
			if se <= be {
				t.Errorf("SIMT efficiency did not improve: %.3f -> %.3f", be, se)
			}
		})
	}
}
