package workloads

import (
	"specrecon/internal/ir"
)

// XSBench "simulates a problem similar to RSBench, but is memory bound
// rather than compute bound. In particular, we find that the nested
// divergent loop in the XSBench kernel has both an expensive inner loop
// and an expensive epilog." (Table 2, [27].)
//
// The inner loop walks a material's nuclides doing dependent gather loads
// into a large unionized energy grid (the classic XSBench access pattern
// that misses in cache), so the common code is memory-latency bound. The
// epilog models the expensive new-task acquisition the paper calls out in
// section 5.3 — a verification reduction plus several table lookups —
// which is why XSBench prefers a partial (soft-barrier) reconvergence:
// refilling idle lanes too eagerly re-executes this epilog divergently.
//
// Memory layout:
//
//	[0, threads)                 per-thread output
//	[matBase, +nMat)             nuclide count per material
//	[gridBase, +gridWords)       unionized energy grid (large, miss-prone)
const (
	xsbenchNMat      = 64
	xsbenchGridWords = 1 << 14 // 16Ki words: twice the cache, ~50% miss
	xsbenchMinNuc    = 4
	xsbenchMaxNuc    = 48
	// xsbenchDefaultThreshold is the tuned soft-barrier threshold: the
	// refill cohort proceeds once this many lanes have collected,
	// i.e. the inner loop drains to 32-28=4 active lanes (section 5.3).
	xsbenchDefaultThreshold = 20
)

func buildXSBench(cfg BuildConfig) *Instance {
	cfg = cfg.withDefaults(10)
	matBase := int64(cfg.Threads)
	gridBase := matBase + xsbenchNMat

	m := ir.NewModule("xsbench")
	m.MemWords = int(gridBase) + xsbenchGridWords
	f := m.NewFunction("xsbench_lookup_kernel")
	b := ir.NewBuilder(f)

	entry := f.NewBlock("entry")
	outerHeader := f.NewBlock("outer_header")
	prolog := f.NewBlock("prolog")
	innerHeader := f.NewBlock("inner_header")
	innerBody := f.NewBlock("inner_body")
	epilog := f.NewBlock("epilog")
	done := f.NewBlock("done")

	b.SetBlock(entry)
	tid := b.Tid()
	task := b.Reg()
	b.ConstTo(task, 0)
	nTasks := b.Const(int64(cfg.Tasks))
	acc := b.FReg()
	b.FConstTo(acc, 0)
	b.Br(outerHeader)

	b.SetBlock(outerHeader)
	more := b.SetLT(task, nTasks)
	b.CBr(more, prolog, done)

	// Prolog: sample material + energy; find the energy-grid anchor.
	b.SetBlock(prolog)
	mat := b.ModI(b.Rand(), xsbenchNMat)
	nNuc := b.Load(b.AddI(mat, matBase), 0)
	eIdx := b.ModI(b.Rand(), xsbenchGridWords) // grid anchor for this lookup
	j := b.Reg()
	b.ConstTo(j, 0)
	// XSBench gates the refill rather than the inner body: idle lanes
	// collect at the inner loop's exit (the expensive task-acquisition
	// epilog) and refill together once enough have drained out of the
	// inner loop — "the program continues execution until the number of
	// active threads drops below some threshold and refilling idle
	// threads becomes worth the cost" (section 5.3). The default
	// threshold is the sweet spot of the Figure 9 sweep: the cohort
	// refills once 20 lanes have drained out of the inner loop.
	b.PredictThreshold(epilog, xsbenchDefaultThreshold)
	b.Br(innerHeader)

	b.SetBlock(innerHeader)
	cont := b.SetLT(j, nNuc)
	b.CBr(cont, innerBody, epilog)

	// Inner body: dependent gathers into the unionized grid — the
	// memory-bound common code.
	b.SetBlock(innerBody)
	g0 := b.ModI(b.Add(eIdx, b.MulI(j, 7919)), xsbenchGridWords)
	v0 := b.Load(b.AddI(g0, gridBase), 0)
	g1 := b.ModI(b.Add(v0, b.MulI(j, 104729)), xsbenchGridWords)
	g1 = b.AddI(b.AndI(g1, -2), 1) // odd word: the float half of the pair
	v1 := b.FLoad(b.AddI(g1, gridBase), 0)
	s := b.FMA(v1, v1, v1)
	b.FMovTo(acc, b.FAdd(acc, s))
	b.MovTo(j, b.AddI(j, 1))
	b.Br(innerHeader)

	// Epilog: expensive task retirement + new-task acquisition — the
	// "expensive process required when a thread wants a new task".
	b.SetBlock(epilog)
	x := b.FAddI(acc, 1.0)
	x = heavyFlops(b, x, acc, 20)
	h0 := b.AndI(b.FtoI(b.FMulI(x, 1024.0)), xsbenchGridWords-1)
	h0 = b.AddI(b.AndI(h0, -2), 1)
	t0 := b.FLoad(b.AddI(h0, gridBase), 0)
	x = b.FAdd(x, t0)
	x = heavyFlops(b, x, t0, 20)
	h1 := b.AndI(b.FtoI(b.FMulI(x, 4096.0)), xsbenchGridWords-1)
	h1 = b.AddI(b.AndI(h1, -2), 1)
	t1 := b.FLoad(b.AddI(h1, gridBase), 0)
	x = heavyFlops(b, b.FAdd(x, t1), t1, 16)
	b.FMovTo(acc, b.FMulI(x, 0.5))
	b.MovTo(task, b.AddI(task, 1))
	b.Br(outerHeader)

	b.SetBlock(done)
	b.FStore(tid, 0, acc)
	b.Exit()

	mem := make([]uint64, m.MemWords)
	r := newTableRNG(cfg.Seed)
	tableRand(mem, int(matBase), xsbenchNMat, func(i int) uint64 {
		// Heavy-tailed nuclide counts: a majority of cheap materials
		// plus a fat tail, giving the high trip-count variance that
		// makes full reconvergence wait too long (section 5.3).
		if r.Float64() < 0.75 {
			return uint64(r.Range(xsbenchMinNuc, 12))
		}
		return uint64(r.Range(24, xsbenchMaxNuc))
	})
	tableRand(mem, int(gridBase), xsbenchGridWords, func(i int) uint64 {
		if i%2 == 0 {
			return uint64(r.Intn(xsbenchGridWords))
		}
		return floatBits(r.Float64())
	})
	return &Instance{Module: m, Kernel: f.Name, Threads: cfg.Threads, Memory: mem, Seed: cfg.Seed}
}

func init() {
	register(&Workload{
		Name: "xsbench",
		Description: "Simulates a problem similar to RSBench, but memory bound rather than " +
			"compute bound: the nested divergent loop has both an expensive inner loop and " +
			"an expensive epilog.",
		Pattern:   "loop-merge",
		Annotated: true,
		BuildFn:   buildXSBench,
	})
}
