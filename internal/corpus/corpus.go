// Package corpus generates the synthetic application population behind
// the paper's section 5.4 study: "Of the 520 CUDA applications we
// studied, 75 had a SIMT efficiency of less than about 80%. Our
// implementation detected non-trivial opportunity in 16 applications, and
// 5 showed significant improvement in SIMT efficiency and runtime."
//
// We cannot ship NVIDIA's internal application database, so we synthesize
// a 520-kernel population whose composition mirrors the paper's
// observation that "divergent workloads form a small fraction of GPU
// applications": most kernels are uniform (dense linear algebra style,
// stencil style, streaming style), a minority carry divergent branches or
// loops, and a handful exhibit the deep imbalanced nesting that
// speculative reconvergence targets. Running the automatic detector over
// this population reproduces the funnel, and the top detected kernels
// feed Figure 10 alongside the OptiX and MeiyaMD5 workloads.
package corpus

import (
	"fmt"

	"specrecon/internal/ir"
	"specrecon/internal/rng"
)

// Kind labels the generator archetypes.
type Kind int

const (
	// KindStreaming is a uniform elementwise kernel: no divergence.
	KindStreaming Kind = iota
	// KindStencil is a uniform loop nest over neighbours.
	KindStencil
	// KindReduction is a uniform loop with an atomic tail.
	KindReduction
	// KindBranchy has divergent branches with cheap sides (divergent
	// but not worth transforming).
	KindBranchy
	// KindImbalancedLoop has a divergent-trip inner loop nested in an
	// outer loop — a Loop Merge opportunity whose profitability depends
	// on the generated cost balance.
	KindImbalancedLoop
	// KindDivergentCond has an expensive divergent conditional inside a
	// loop — an Iteration Delay opportunity.
	KindDivergentCond
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindStreaming:
		return "streaming"
	case KindStencil:
		return "stencil"
	case KindReduction:
		return "reduction"
	case KindBranchy:
		return "branchy"
	case KindImbalancedLoop:
		return "imbalanced-loop"
	case KindDivergentCond:
		return "divergent-cond"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// App is one synthetic application.
type App struct {
	Name   string
	Kind   Kind
	Module *ir.Module
	Kernel string
	// Threads and Memory configure the reference launch.
	Threads int
	Memory  []uint64
	Seed    uint64
}

// Generate builds n synthetic applications with the population mix
// described in the package comment. The same seed always produces the
// same corpus.
func Generate(n int, seed uint64) []*App {
	r := rng.Split(seed, 0xc0405)
	apps := make([]*App, 0, n)
	for i := 0; i < n; i++ {
		// ~85% uniform kernels, ~7% cheaply branchy, ~8% candidates
		// with generated (often unprofitable) cost balances — matching
		// the paper's observation that "divergent workloads form a
		// small fraction of GPU applications" (~75 of 520 below the
		// 80% efficiency screen).
		var kind Kind
		switch p := r.Float64(); {
		case p < 0.37:
			kind = KindStreaming
		case p < 0.66:
			kind = KindStencil
		case p < 0.855:
			kind = KindReduction
		case p < 0.925:
			kind = KindBranchy
		case p < 0.968:
			kind = KindImbalancedLoop
		default:
			kind = KindDivergentCond
		}
		apps = append(apps, generateApp(i, kind, rng.Split(seed, uint64(i)+1)))
	}
	return apps
}

func generateApp(i int, kind Kind, r *rng.Source) *App {
	name := fmt.Sprintf("app%03d-%s", i, kind)
	m := ir.NewModule(name)
	threads := ir.WarpWidth
	m.MemWords = threads + 512

	f := m.NewFunction("kernel")
	b := ir.NewBuilder(f)

	switch kind {
	case KindStreaming:
		genStreaming(f, b, r)
	case KindStencil:
		genStencil(f, b, r)
	case KindReduction:
		genReduction(f, b, r)
	case KindBranchy:
		genBranchy(f, b, r)
	case KindImbalancedLoop:
		genImbalancedLoop(f, b, r)
	case KindDivergentCond:
		genDivergentCond(f, b, r)
	}

	mem := make([]uint64, m.MemWords)
	for w := threads; w < m.MemWords; w++ {
		mem[w] = uint64(r.Intn(1 << 16))
	}
	return &App{
		Name:    name,
		Kind:    kind,
		Module:  m,
		Kernel:  "kernel",
		Threads: threads,
		Memory:  mem,
		Seed:    uint64(i) * 2654435761,
	}
}

// genStreaming: out[tid] = f(in[tid]) with a uniform inner loop.
func genStreaming(f *ir.Function, b *ir.Builder, r *rng.Source) {
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	done := f.NewBlock("done")

	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Reg()
	b.ConstTo(i, 0)
	n := b.Const(int64(8 + r.Intn(24)))
	acc := b.FConst(1.0)
	b.Br(header)

	b.SetBlock(header)
	b.CBr(b.SetLT(i, n), body, done)

	b.SetBlock(body)
	v := b.FLoad(b.AddI(b.ModI(b.Add(tid, i), 256), 32), 0)
	b.FMovTo(acc, b.FMA(acc, v, acc))
	b.MovTo(i, b.AddI(i, 1))
	b.Br(header)

	b.SetBlock(done)
	b.FStore(tid, 0, acc)
	b.Exit()
}

// genStencil: uniform doubly nested loop.
func genStencil(f *ir.Function, b *ir.Builder, r *rng.Source) {
	entry := f.NewBlock("entry")
	oh := f.NewBlock("outer_header")
	ih := f.NewBlock("inner_header")
	ibody := f.NewBlock("inner_body")
	oinc := f.NewBlock("outer_inc")
	done := f.NewBlock("done")

	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Reg()
	b.ConstTo(i, 0)
	ni := b.Const(int64(4 + r.Intn(8)))
	j := b.Reg()
	nj := b.Const(int64(3 + r.Intn(5)))
	acc := b.FConst(0.5)
	b.Br(oh)

	b.SetBlock(oh)
	b.ConstTo(j, 0)
	b.CBr(b.SetLT(i, ni), ih, done)

	b.SetBlock(ih)
	b.CBr(b.SetLT(j, nj), ibody, oinc)

	b.SetBlock(ibody)
	v := b.FLoad(b.AddI(b.ModI(b.Add(b.Add(tid, i), j), 256), 32), 0)
	b.FMovTo(acc, b.FAdd(acc, b.FMulI(v, 0.25)))
	b.MovTo(j, b.AddI(j, 1))
	b.Br(ih)

	b.SetBlock(oinc)
	b.MovTo(i, b.AddI(i, 1))
	b.Br(oh)

	b.SetBlock(done)
	b.FStore(tid, 0, acc)
	b.Exit()
}

// genReduction: uniform loop plus atomic accumulation.
func genReduction(f *ir.Function, b *ir.Builder, r *rng.Source) {
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	done := f.NewBlock("done")

	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Reg()
	b.ConstTo(i, 0)
	n := b.Const(int64(16 + r.Intn(16)))
	acc := b.FConst(0)
	b.Br(header)

	b.SetBlock(header)
	b.CBr(b.SetLT(i, n), body, done)

	b.SetBlock(body)
	v := b.FLoad(b.AddI(b.ModI(b.Add(tid, b.MulI(i, 7)), 256), 32), 0)
	b.FMovTo(acc, b.FAdd(acc, v))
	b.MovTo(i, b.AddI(i, 1))
	b.Br(header)

	b.SetBlock(done)
	zero := b.Const(0)
	b.FAtomAdd(zero, 8, acc)
	b.FStore(tid, 0, acc)
	b.Exit()
}

// genBranchy: divergent branches whose sides are cheap — the detector's
// cost model should reject these.
func genBranchy(f *ir.Function, b *ir.Builder, r *rng.Source) {
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	split := f.NewBlock("split")
	thn := f.NewBlock("thn")
	els := f.NewBlock("els")
	merge := f.NewBlock("merge")
	done := f.NewBlock("done")

	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Reg()
	b.ConstTo(i, 0)
	n := b.Const(int64(12 + r.Intn(20)))
	acc := b.FConst(0)
	b.Br(header)

	b.SetBlock(header)
	b.CBr(b.SetLT(i, n), split, done)

	b.SetBlock(split)
	c := b.FSetLTI(b.FRand(), 0.5)
	b.CBr(c, thn, els)

	b.SetBlock(thn)
	b.FMovTo(acc, b.FAddI(acc, 1.0))
	b.Br(merge)

	b.SetBlock(els)
	b.FMovTo(acc, b.FAddI(acc, 2.0))
	b.Br(merge)

	b.SetBlock(merge)
	b.MovTo(i, b.AddI(i, 1))
	b.Br(header)

	b.SetBlock(done)
	b.FStore(tid, 0, acc)
	b.Exit()
}

// genImbalancedLoop: divergent-trip inner loop inside an outer loop; the
// inner body weight is drawn from a wide range, so only some instances
// pass the profitability test.
func genImbalancedLoop(f *ir.Function, b *ir.Builder, r *rng.Source) {
	entry := f.NewBlock("entry")
	oh := f.NewBlock("outer_header")
	prolog := f.NewBlock("prolog")
	ih := f.NewBlock("inner_header")
	ibody := f.NewBlock("inner_body")
	epilog := f.NewBlock("epilog")
	done := f.NewBlock("done")

	weight := 1 + r.Intn(14)    // inner body heaviness
	epiWeight := 1 + r.Intn(10) // epilog heaviness
	maxTrip := int64(8 + r.Intn(40))

	b.SetBlock(entry)
	tid := b.Tid()
	task := b.Reg()
	b.ConstTo(task, 0)
	nTasks := b.Const(int64(6 + r.Intn(8)))
	acc := b.FConst(0)
	b.Br(oh)

	b.SetBlock(oh)
	b.CBr(b.SetLT(task, nTasks), prolog, done)

	b.SetBlock(prolog)
	trip := b.AddI(b.ModI(b.Rand(), maxTrip), 1)
	j := b.Reg()
	b.ConstTo(j, 0)
	seed := b.FRand()
	b.Br(ih)

	b.SetBlock(ih)
	b.CBr(b.SetLT(j, trip), ibody, epilog)

	b.SetBlock(ibody)
	x := heavyFlopsCorpus(b, b.FAdd(acc, seed), seed, weight)
	b.FMovTo(acc, b.FAdd(acc, x))
	b.MovTo(j, b.AddI(j, 1))
	b.Br(ih)

	b.SetBlock(epilog)
	e := heavyFlopsCorpus(b, acc, seed, epiWeight)
	b.FMovTo(acc, b.FMulI(e, 0.5))
	b.MovTo(task, b.AddI(task, 1))
	b.Br(oh)

	b.SetBlock(done)
	b.FStore(tid, 0, acc)
	b.Exit()
}

// genDivergentCond: loop with a rarely-taken expensive conditional.
func genDivergentCond(f *ir.Function, b *ir.Builder, r *rng.Source) {
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	split := f.NewBlock("split")
	expensive := f.NewBlock("expensive")
	merge := f.NewBlock("merge")
	done := f.NewBlock("done")

	weight := 4 + r.Intn(20)
	takeP := 0.1 + 0.3*r.Float64()

	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Reg()
	b.ConstTo(i, 0)
	n := b.Const(int64(24 + r.Intn(40)))
	acc := b.FConst(0)
	b.Br(header)

	b.SetBlock(header)
	b.CBr(b.SetLT(i, n), split, done)

	b.SetBlock(split)
	b.FMovTo(acc, b.FAddI(acc, 0.25))
	c := b.FSetLTI(b.FRand(), takeP)
	b.CBr(c, expensive, merge)

	b.SetBlock(expensive)
	x := heavyFlopsCorpus(b, b.FAddI(acc, 1.0), acc, weight)
	b.FMovTo(acc, b.FAdd(acc, x))
	b.Br(merge)

	b.SetBlock(merge)
	b.MovTo(i, b.AddI(i, 1))
	b.Br(header)

	b.SetBlock(done)
	b.FStore(tid, 0, acc)
	b.Exit()
}

// heavyFlopsCorpus mirrors workloads.heavyFlops without importing it
// (corpus is deliberately independent of the benchmark package).
func heavyFlopsCorpus(b *ir.Builder, x, p ir.Reg, n int) ir.Reg {
	for k := 0; k < n; k++ {
		x = b.FMA(x, x, p)
		x = b.FSqrt(b.FAbs(x))
	}
	return x
}
