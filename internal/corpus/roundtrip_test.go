package corpus

import (
	"testing"

	"specrecon/internal/ir"
)

// TestCorpusPrintParseRoundTrip pushes every generated kernel shape
// through the textual format: a structural fuzz of the printer/parser
// over hundreds of machine-generated modules.
func TestCorpusPrintParseRoundTrip(t *testing.T) {
	apps := Generate(250, 77)
	for _, app := range apps {
		text := ir.Print(app.Module)
		parsed, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("%s: parse of printed module failed: %v\n%s", app.Name, err, text)
		}
		again := ir.Print(parsed)
		if again != text {
			t.Fatalf("%s: round trip unstable", app.Name)
		}
	}
}
