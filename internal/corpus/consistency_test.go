package corpus

import (
	"math"
	"testing"

	"specrecon/internal/core"
	"specrecon/internal/simt"
)

// Cross-configuration consistency fuzz: for a batch of machine-generated
// kernels, every combination of compile options (baseline / speculative
// at several thresholds / static deconfliction) and execution
// configuration (both engines, every scheduler policy) must produce the
// same final memory. This is the repository's strongest semantic
// invariant: synchronization and scheduling are performance mechanisms,
// never semantics.

func wordsEqualish(a, b uint64) bool {
	if a == b {
		return true
	}
	fa, fb := math.Float64frombits(a), math.Float64frombits(b)
	if math.IsNaN(fa) && math.IsNaN(fb) {
		return true
	}
	if math.Abs(fa) < 1e-300 || math.Abs(fb) < 1e-300 {
		return false
	}
	diff := math.Abs(fa - fb)
	return diff <= 1e-9*math.Max(math.Abs(fa), math.Abs(fb))
}

func TestCrossConfigConsistency(t *testing.T) {
	apps := Generate(48, 2026)

	compileVariants := func(app *App) []*core.Compilation {
		var out []*core.Compilation
		mods := []*struct {
			opts core.Options
		}{
			{core.BaselineOptions()},
			{func() core.Options {
				o := core.SpecReconOptions()
				o.ThresholdOverride = 16
				return o
			}()},
			{func() core.Options {
				o := core.SpecReconOptions()
				o.Deconflict = core.DeconflictStatic
				return o
			}()},
		}
		// Annotate a clone so the speculative variants have something
		// to lower; kernels without detected opportunity just compile
		// to the baseline shape.
		annotated := app.Module.Clone()
		core.AutoAnnotate(annotated, core.AutoDetectOptions{TripCount: 8, MemPenalty: 4, MinScore: 1, Threshold: 0})
		for i, v := range mods {
			src := app.Module
			if i > 0 {
				src = annotated
			}
			comp, err := core.Compile(src, v.opts)
			if err != nil {
				t.Fatalf("%s: compile variant %d: %v", app.Name, i, err)
			}
			out = append(out, comp)
		}
		return out
	}

	for _, app := range apps {
		var ref []uint64
		for ci, comp := range compileVariants(app) {
			for _, model := range []simt.Model{simt.ModelITS, simt.ModelStack} {
				policies := []simt.Policy{simt.PolicyMaxGroup}
				if model == simt.ModelITS {
					policies = []simt.Policy{simt.PolicyMaxGroup, simt.PolicyMinPC, simt.PolicyRoundRobin}
				}
				for _, pol := range policies {
					res, err := simt.Run(comp.Module, simt.Config{
						Kernel: app.Kernel, Threads: app.Threads, Seed: app.Seed,
						Memory: app.Memory, Policy: pol, Model: model,
						Strict: model == simt.ModelITS,
					})
					if err != nil {
						t.Fatalf("%s: variant %d model=%v policy=%v: %v", app.Name, ci, model, pol, err)
					}
					if ref == nil {
						ref = res.Memory
						continue
					}
					for i := range ref {
						if !wordsEqualish(ref[i], res.Memory[i]) {
							t.Fatalf("%s: variant %d model=%v policy=%v diverges at word %d (%#x vs %#x)",
								app.Name, ci, model, pol, i, ref[i], res.Memory[i])
						}
					}
				}
			}
		}
	}
}
