package corpus

import (
	"testing"

	"specrecon/internal/core"
	"specrecon/internal/ir"
	"specrecon/internal/simt"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(40, 9)
	b := Generate(40, 9)
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Kind != b[i].Kind {
			t.Fatalf("app %d differs across identical generations", i)
		}
		if ir.Print(a[i].Module) != ir.Print(b[i].Module) {
			t.Fatalf("app %d module text differs", i)
		}
	}
}

func TestAllAppsVerifyAndRun(t *testing.T) {
	apps := Generate(60, 3)
	for _, app := range apps {
		if err := ir.VerifyModule(app.Module); err != nil {
			t.Fatalf("%s: invalid module: %v", app.Name, err)
		}
		comp, err := core.Compile(app.Module, core.BaselineOptions())
		if err != nil {
			t.Fatalf("%s: compile: %v", app.Name, err)
		}
		if _, err := simt.Run(comp.Module, simt.Config{
			Kernel: app.Kernel, Threads: app.Threads, Seed: app.Seed,
			Memory: app.Memory, Strict: true,
		}); err != nil {
			t.Fatalf("%s: run: %v", app.Name, err)
		}
	}
}

func TestPopulationMix(t *testing.T) {
	apps := Generate(520, 42)
	counts := map[Kind]int{}
	for _, a := range apps {
		counts[a.Kind]++
	}
	uniform := counts[KindStreaming] + counts[KindStencil] + counts[KindReduction]
	if uniform < 400 {
		t.Errorf("uniform kernels = %d of 520, want the large majority", uniform)
	}
	candidates := counts[KindImbalancedLoop] + counts[KindDivergentCond]
	if candidates < 20 || candidates > 70 {
		t.Errorf("candidate kernels = %d, want a small minority (20..70)", candidates)
	}
}

func TestUniformKindsAreEfficient(t *testing.T) {
	apps := Generate(80, 11)
	for _, app := range apps {
		if app.Kind != KindStreaming && app.Kind != KindStencil && app.Kind != KindReduction {
			continue
		}
		comp, err := core.Compile(app.Module, core.BaselineOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := simt.Run(comp.Module, simt.Config{
			Kernel: app.Kernel, Threads: app.Threads, Seed: app.Seed,
			Memory: app.Memory, Strict: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if eff := res.Metrics.SIMTEfficiency(); eff < 0.95 {
			t.Errorf("%s (%s): efficiency %.2f, uniform kernels should be near 1", app.Name, app.Kind, eff)
		}
	}
}

func TestDivergentKindsAreInefficient(t *testing.T) {
	apps := Generate(200, 12)
	seen := 0
	for _, app := range apps {
		if app.Kind != KindImbalancedLoop && app.Kind != KindDivergentCond {
			continue
		}
		seen++
		comp, err := core.Compile(app.Module, core.BaselineOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := simt.Run(comp.Module, simt.Config{
			Kernel: app.Kernel, Threads: app.Threads, Seed: app.Seed,
			Memory: app.Memory, Strict: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if eff := res.Metrics.SIMTEfficiency(); eff >= 0.8 {
			t.Errorf("%s (%s): efficiency %.2f, divergent kernels should screen below 80%%", app.Name, app.Kind, eff)
		}
	}
	if seen == 0 {
		t.Fatal("no divergent kernels generated in 200 apps")
	}
}
