package ir

import (
	"errors"
	"fmt"
)

// VerifyModule checks structural well-formedness of every function in the
// module plus module-level properties (call targets resolve, entry kernels
// exist). It returns all problems found, joined into one error.
func VerifyModule(m *Module) error {
	var errs []error
	if len(m.Funcs) == 0 {
		errs = append(errs, errors.New("module has no functions"))
	}
	seen := make(map[string]bool)
	for _, f := range m.Funcs {
		if seen[f.Name] {
			errs = append(errs, fmt.Errorf("duplicate function %q", f.Name))
		}
		seen[f.Name] = true
		if err := VerifyFunction(f); err != nil {
			errs = append(errs, fmt.Errorf("func %q: %w", f.Name, err))
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == OpCall && m.FuncByName(in.Callee) == nil {
					errs = append(errs, fmt.Errorf("func %q block %q: call to undefined function %q", f.Name, b.Name, in.Callee))
				}
			}
		}
		for pi, p := range f.Predictions {
			if p.Callee != "" && m.FuncByName(p.Callee) == nil {
				errs = append(errs, fmt.Errorf("func %q prediction %d: callee %q undefined", f.Name, pi, p.Callee))
			}
		}
	}
	return errors.Join(errs...)
}

// VerifyFunction checks structural well-formedness of one function:
// every block ends in exactly one terminator with the right successor
// count, operands respect opcode signatures and register-file bounds,
// block names are unique, indices are consistent, and predictions
// reference blocks of this function.
func VerifyFunction(f *Function) error {
	var errs []error
	if len(f.Blocks) == 0 {
		return errors.New("no blocks")
	}
	names := make(map[string]bool, len(f.Blocks))
	blockSet := make(map[*Block]bool, len(f.Blocks))
	for i, b := range f.Blocks {
		blockSet[b] = true
		if b.Name == "" {
			errs = append(errs, fmt.Errorf("block %d has empty name", i))
		}
		if names[b.Name] {
			errs = append(errs, fmt.Errorf("duplicate block name %q", b.Name))
		}
		names[b.Name] = true
		if b.Index != i {
			errs = append(errs, fmt.Errorf("block %q has stale index %d (want %d); call Reindex", b.Name, b.Index, i))
		}
	}
	for _, b := range f.Blocks {
		errs = append(errs, verifyBlock(f, b, blockSet)...)
	}
	for pi, p := range f.Predictions {
		if p.At == nil {
			errs = append(errs, fmt.Errorf("prediction %d: nil At block", pi))
		} else if !blockSet[p.At] {
			errs = append(errs, fmt.Errorf("prediction %d: At block not in function", pi))
		}
		switch {
		case p.Label == nil && p.Callee == "":
			errs = append(errs, fmt.Errorf("prediction %d: neither Label nor Callee set", pi))
		case p.Label != nil && p.Callee != "":
			errs = append(errs, fmt.Errorf("prediction %d: both Label and Callee set", pi))
		case p.Label != nil && !blockSet[p.Label]:
			errs = append(errs, fmt.Errorf("prediction %d: Label block not in function", pi))
		}
		if p.Threshold < 0 || p.Threshold > WarpWidth {
			errs = append(errs, fmt.Errorf("prediction %d: threshold %d outside [0,%d]", pi, p.Threshold, WarpWidth))
		}
	}
	return errors.Join(errs...)
}

func verifyBlock(f *Function, b *Block, blockSet map[*Block]bool) []error {
	var errs []error
	if len(b.Instrs) == 0 {
		return []error{fmt.Errorf("block %q is empty", b.Name)}
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		isLast := i == len(b.Instrs)-1
		if in.Op == OpInvalid || in.Op >= numOpcodes {
			errs = append(errs, fmt.Errorf("block %q instr %d: invalid opcode", b.Name, i))
			continue
		}
		info := &opTable[in.Op]
		if info.term && !isLast {
			errs = append(errs, fmt.Errorf("block %q instr %d: terminator %s before end of block", b.Name, i, in.Op))
		}
		if isLast && !info.term {
			errs = append(errs, fmt.Errorf("block %q: last instruction %s is not a terminator", b.Name, in.Op))
		}
		errs = append(errs, verifyOperands(f, b, i, in)...)
	}
	term := b.Terminator()
	want := opTable[term.Op].nsucc
	if len(b.Succs) != want {
		errs = append(errs, fmt.Errorf("block %q: terminator %s wants %d successors, has %d", b.Name, term.Op, want, len(b.Succs)))
	}
	for si, s := range b.Succs {
		if s == nil {
			errs = append(errs, fmt.Errorf("block %q: nil successor %d", b.Name, si))
		} else if !blockSet[s] {
			errs = append(errs, fmt.Errorf("block %q: successor %d (%q) not in function", b.Name, si, s.Name))
		}
	}
	return errs
}

func verifyOperands(f *Function, b *Block, i int, in *Instr) []error {
	var errs []error
	info := &opTable[in.Op]
	at := func(msg string, args ...any) {
		errs = append(errs, fmt.Errorf("block %q instr %d (%s): %s", b.Name, i, in.Op, fmt.Sprintf(msg, args...)))
	}
	checkReg := func(role string, r Reg, file regFile) {
		switch file {
		case fileNone:
			// Unused operands are not checked; builders set NoReg but
			// the zero value is also tolerated for hand-built IR.
		case fileInt:
			if r < 0 || int(r) >= f.NRegs {
				at("%s register r%d out of range [0,%d)", role, r, f.NRegs)
			}
		case fileFloat:
			if r < 0 || int(r) >= f.NFRegs {
				at("%s register f%d out of range [0,%d)", role, r, f.NFRegs)
			}
		}
	}
	checkReg("dst", in.Dst, info.dst)
	checkReg("a", in.A, info.a)
	if info.b != fileNone && !(in.BImm && info.bMayImm) {
		checkReg("b", in.B, info.b)
	}
	if in.BImm && !info.bMayImm {
		at("BImm set but opcode does not take an immediate B")
	}
	checkReg("c", in.C, info.c)
	if info.bar {
		if in.Bar < 0 {
			at("negative barrier register %d", in.Bar)
		}
	}
	if info.wgbar && (in.Bar < 0 || in.Bar >= NumBarrierRegs) {
		at("workgroup barrier %d outside [0,%d)", in.Bar, NumBarrierRegs)
	}
	if in.Op == OpWaitN && (in.Imm < 0 || in.Imm > WarpWidth) {
		at("waitn threshold %d outside [0,%d]", in.Imm, WarpWidth)
	}
	if info.call && in.Callee == "" {
		at("call with empty callee")
	}
	return errs
}
