package ir

import (
	"strings"
	"testing"
)

// TestBuilderFullSurface drives every builder helper once, verifies the
// module, and round-trips it through the textual format — broad coverage
// of the emit helpers and the printer's operand forms.
func TestBuilderFullSurface(t *testing.T) {
	m := NewModule("surface")
	m.MemWords = 256

	callee := m.NewFunction("leaf")
	{
		cb := NewBuilder(callee)
		cb.SetBlock(callee.NewBlock("leaf_entry"))
		callee.NFRegs = 1
		cb.FMovTo(Reg(0), cb.FAddI(Reg(0), 1.0))
		cb.Ret()
	}

	f := m.NewFunction("kernel")
	b := NewBuilder(f)
	if f.NFRegs < 1 {
		f.NFRegs = 1
	}
	entry := b.Block("entry")
	_ = entry
	loop := f.NewBlock("loop")
	thn := f.NewBlock("thn")
	els := f.NewBlock("els")
	merge := f.NewBlock("merge")
	tail := f.NewBlock("tail")

	// Integer surface.
	tid := b.Tid()
	lane := b.Lane()
	nt := b.NumThreads()
	r := b.Rand()
	c := b.Const(3)
	mv := b.Mov(c)
	b.MovTo(mv, c)
	b.ConstTo(mv, 4)
	sum := b.Add(tid, lane)
	sum = b.AddI(sum, 1)
	sub := b.Sub(nt, c)
	sub = b.SubI(sub, 1)
	mul := b.Mul(sum, sub)
	mul = b.MulI(mul, 2)
	dv := b.Div(mul, c)
	md := b.Mod(dv, c)
	md = b.ModI(md, 5)
	mn := b.Min(sum, sub)
	mx := b.Max(sum, sub)
	an := b.And(mn, mx)
	an = b.AndI(an, 255)
	or := b.Or(an, c)
	xo := b.Xor(or, c)
	xo = b.XorI(xo, 1)
	sl := b.Shl(xo, c)
	sl = b.ShlI(sl, 1)
	sr := b.ShrI(sl, 2)
	eq := b.SetEQ(sr, c)
	eq = b.SetEQI(eq, 0)
	ne := b.SetNE(eq, c)
	ne = b.SetNEI(ne, 1)
	lt := b.SetLT(ne, c)
	lt = b.SetLTI(lt, 2)
	le := b.SetLE(lt, c)
	gt := b.SetGT(le, c)
	gt = b.SetGTI(gt, 0)
	ge := b.SetGE(gt, c)
	ge = b.SetGEI(ge, 0)
	_ = r

	// Float surface.
	fc := b.FConst(1.5)
	fd := b.FReg()
	b.FConstTo(fd, 2.5)
	b.FMovTo(fd, fc)
	fr := b.FRand()
	fa := b.FAdd(fc, fr)
	fa = b.FAddI(fa, 0.5)
	fs := b.FSub(fa, fc)
	fs = b.FSubI(fs, 0.25)
	fm := b.FMul(fs, fc)
	fm = b.FMulI(fm, 2.0)
	fdv := b.FDiv(fm, b.FConst(2.0))
	fmin := b.FMinOp(fdv, fc)
	fmax := b.FMaxOp(fmin, fc)
	fneg := b.FNeg(fmax)
	fabs := b.FAbs(fneg)
	fsq := b.FSqrt(fabs)
	_ = fsq
	fex := b.FExp(b.FConst(0))
	flg := b.FLog(fex)
	fsin := b.FSin(flg)
	fcos := b.FCos(fsin)
	fma := b.FMA(fcos, fc, fabs)
	flt := b.FSetLT(fma, fc)
	flt2 := b.FSetLTI(fma, 9.0)
	fgt := b.FSetGT(fma, fc)
	fgt2 := b.FSetGTI(fma, -9.0)
	fge := b.FSetGE(fma, fc)
	fle := b.FSetLE(fma, fc)
	itf := b.ItoF(lt)
	fti := b.FtoI(itf)
	_, _, _, _, _, _, _ = flt, flt2, fgt, fgt2, fge, fle, fti

	// Memory surface.
	addr := b.AndI(tid, 63)
	ld := b.Load(addr, 0)
	fl := b.FLoad(addr, 64)
	b.Store(addr, 128, ld)
	b.FStore(addr, 192, fl)
	one := b.Const(1)
	old := b.AtomAdd(b.Const(0), 130, one)
	fold := b.FAtomAdd(b.Const(0), 131, fl)
	_, _ = old, fold

	// Votes and sync.
	va := b.VoteAny(ge)
	vl := b.VoteAll(va)
	bl := b.Ballot(vl)
	_ = bl
	b.WarpSync()

	// Barriers.
	bar := b.Barrier()
	b.Join(bar)
	cnt := b.Arrived(bar)
	_ = cnt
	b.Cancel(bar)
	b.Join(bar)
	b.Wait(bar)
	b.Join(bar)
	b.WaitN(bar, 16)
	b.Call("leaf")
	b.Br(loop)

	b.SetBlock(loop)
	cond := b.AndI(tid, 1)
	b.CBr(cond, thn, els)

	b.SetBlock(thn)
	b.Predict(merge)
	b.Br(merge)

	b.SetBlock(els)
	b.PredictThreshold(merge, 8)
	b.PredictCall("leaf")
	b.Br(merge)

	b.SetBlock(merge)
	sel := b.Reg()
	b.Emit(Instr{Op: OpSelect, Dst: sel, A: cond, B: tid, C: lane})
	b.Emit(Instr{Op: OpNop, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg})
	b.Br(tail)

	b.SetBlock(tail)
	if b.Current() != tail {
		t.Fatal("Current() mismatch")
	}
	b.Exit()

	if err := VerifyModule(m); err != nil {
		t.Fatalf("surface module invalid: %v", err)
	}

	text := Print(m)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("parse of printed surface module: %v\n%s", err, text)
	}
	if Print(back) != text {
		t.Fatal("surface module round trip unstable")
	}
	if !strings.Contains(text, ".predictcall @leaf") || !strings.Contains(text, "threshold=8") {
		t.Error("prediction directives missing from print")
	}
	dot := DOT(m.FuncByName("kernel"))
	if !strings.Contains(dot, "digraph") {
		t.Error("DOT output malformed")
	}
}
