package ir

import "fmt"

// Opcode identifies one instruction of the SIMT virtual ISA.
//
// The ISA is a register machine with two per-thread register files (int64
// and float64), a flat global memory of 64-bit words shared by all threads,
// and Volta-style convergence-barrier operations. Opcodes are grouped into
// integer ALU, float ALU, divergence sources, memory, barrier, and control
// classes. The operand signature and issue latency of every opcode live in
// the opInfo table below; the printer, parser, verifier and simulator are
// all driven by that single table.
type Opcode uint8

const (
	OpInvalid Opcode = iota

	// Integer ALU. Dst and A are integer registers; B is an integer
	// register or, when Instr.BImm is set, the immediate Instr.Imm.
	OpConst // dst = imm
	OpMov   // dst = a
	OpAdd
	OpSub
	OpMul
	OpDiv // dst = a / b; division by zero yields 0 (GPU-style)
	OpMod // dst = a % b; mod by zero yields 0
	OpMin
	OpMax
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNot // dst = ^a
	OpNeg // dst = -a
	OpSetEQ
	OpSetNE
	OpSetLT
	OpSetLE
	OpSetGT
	OpSetGE
	OpSelect // dst = a != 0 ? b : c

	// Float ALU. Dst and operands are float registers; B may be the
	// float immediate Instr.FImm when Instr.BImm is set.
	OpFConst // dst = fimm
	OpFMov
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFMin
	OpFMax
	OpFNeg
	OpFAbs
	OpFSqrt
	OpFExp
	OpFLog
	OpFSin
	OpFCos
	OpFMA // dst = a*b + c
	OpFSetEQ
	OpFSetNE
	OpFSetLT
	OpFSetLE
	OpFSetGT
	OpFSetGE
	OpItoF // fdst = float64(a)
	OpFtoI // dst = int64(fa), truncated

	// Divergence sources and thread identity.
	OpTid        // dst = global thread id
	OpLane       // dst = lane id within the warp
	OpNumThreads // dst = total launched threads (uniform)
	OpRand       // dst = next 63-bit value of the per-thread RNG
	OpFRand      // fdst = per-thread uniform float in [0,1)

	// Memory. Addresses are word indices into global memory; the
	// effective address is reg(A) + Imm.
	OpLoad     // dst = mem[a+imm]
	OpStore    // mem[a+imm] = b (int)
	OpFLoad    // fdst = mem[a+imm] as float
	OpFStore   // mem[a+imm] = fb
	OpAtomAdd  // dst = old mem[a+imm]; mem[a+imm] += b
	OpFAtomAdd // fdst = old; mem[a+imm] += fb

	// Convergence barriers. Bar names a virtual barrier register; the
	// barrier allocator later maps virtual barriers onto the warp's
	// physical barrier registers.
	OpJoin     // BSSY: add executing lanes to the barrier's participation mask
	OpWait     // BSYNC: block until all participating lanes arrive, then clear
	OpWaitN    // soft barrier: release the waiting cohort once >= Imm lanes wait
	OpCancel   // BREAK: remove executing lanes from the participation mask
	OpArrived  // dst = number of lanes currently blocked waiting on the barrier
	OpWarpSync // full-warp barrier over all live lanes (CUDA 9 warpsync)

	// Warp-synchronous communication. These read across the lanes of
	// the ISSUING GROUP, so their results depend on convergence — the
	// reason CUDA 9 requires warpsync before them and the automatic
	// detector refuses regions containing them (paper section 6).
	OpVoteAny // dst = 1 if any active lane's a != 0
	OpVoteAll // dst = 1 if every active lane's a != 0
	OpBallot  // dst = bitmask of active lanes with a != 0

	// CTA (workgroup) hierarchy. These only behave non-trivially on a
	// grid launch (simt.Config.Grid > 0); on a flat launch the whole
	// launch acts as one CTA.
	OpCTAId   // dst = CTA index within the grid
	OpCTATid  // dst = thread id within the CTA
	OpCTASize // dst = threads per CTA (uniform)
	// OpCTABar is the workgroup barrier (PTX bar.sync / __syncthreads):
	// a lane blocks until every live lane of its CTA — across all of the
	// CTA's warps — is blocked on the same named CTA barrier. The Bar
	// field names one of the CTA's MaxBarriersPerCTA barriers; it is a
	// different namespace from the warp's convergence-barrier registers
	// (IsBarrierOp is false for this opcode).
	OpCTABar

	// Shared memory: the CTA-scoped address space (ld.shared/st.shared).
	// Addresses are word indices into the CTA's shared segment, sized by
	// the module's sharedwords attribute; the effective address is
	// reg(A) + Imm. Shared accesses bypass the global-memory cache and
	// coalescer and complete at a fixed latency.
	OpSharedLoad   // dst = shared[a+imm]
	OpSharedStore  // shared[a+imm] = b (int)
	OpFSharedLoad  // fdst = shared[a+imm] as float
	OpFSharedStore // shared[a+imm] = fb

	// Control.
	OpCall // call Instr.Callee; not a terminator, returns to the next instr
	OpBr   // unconditional; Block.Succs[0]
	OpCBr  // a != 0 -> Succs[0], else Succs[1]
	OpRet  // return from call; terminates the thread if the stack is empty
	OpExit // terminate the thread
	OpNop

	numOpcodes
)

// regFile says which register file an operand belongs to.
type regFile uint8

const (
	fileNone regFile = iota
	fileInt
	fileFloat
)

// immKind says how an opcode uses the immediate fields.
type immKind uint8

const (
	immNone      immKind = iota
	immInt               // Imm is a required integer literal (const)
	immFloat             // FImm is a required float literal (fconst)
	immOffset            // Imm is a memory offset, printed as [rA+imm]
	immThreshold         // Imm is a soft-barrier threshold
)

// opInfo describes the operand signature, assembly name and issue latency
// of one opcode. Latencies are in simulator cycles for a fully converged
// issue; the memory system adds transaction costs on top for memory ops.
type opInfo struct {
	name    string
	dst     regFile
	a, b, c regFile
	bMayImm bool // B may be an immediate (Instr.BImm)
	imm     immKind
	bar     bool // uses Instr.Bar (warp convergence-barrier register)
	wgbar   bool // uses Instr.Bar as a CTA workgroup-barrier name
	call    bool // uses Instr.Callee
	term    bool // block terminator
	nsucc   int  // required successor count when term
	latency int
}

var opTable = [numOpcodes]opInfo{
	OpInvalid: {name: "invalid"},

	OpConst:  {name: "const", dst: fileInt, imm: immInt, latency: 1},
	OpMov:    {name: "mov", dst: fileInt, a: fileInt, latency: 1},
	OpAdd:    {name: "add", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpSub:    {name: "sub", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpMul:    {name: "mul", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 2},
	OpDiv:    {name: "div", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 8},
	OpMod:    {name: "mod", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 8},
	OpMin:    {name: "min", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpMax:    {name: "max", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpAnd:    {name: "and", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpOr:     {name: "or", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpXor:    {name: "xor", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpShl:    {name: "shl", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpShr:    {name: "shr", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpNot:    {name: "not", dst: fileInt, a: fileInt, latency: 1},
	OpNeg:    {name: "neg", dst: fileInt, a: fileInt, latency: 1},
	OpSetEQ:  {name: "seteq", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpSetNE:  {name: "setne", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpSetLT:  {name: "setlt", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpSetLE:  {name: "setle", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpSetGT:  {name: "setgt", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpSetGE:  {name: "setge", dst: fileInt, a: fileInt, b: fileInt, bMayImm: true, latency: 1},
	OpSelect: {name: "select", dst: fileInt, a: fileInt, b: fileInt, c: fileInt, latency: 1},

	OpFConst: {name: "fconst", dst: fileFloat, imm: immFloat, latency: 1},
	OpFMov:   {name: "fmov", dst: fileFloat, a: fileFloat, latency: 1},
	OpFAdd:   {name: "fadd", dst: fileFloat, a: fileFloat, b: fileFloat, bMayImm: true, latency: 2},
	OpFSub:   {name: "fsub", dst: fileFloat, a: fileFloat, b: fileFloat, bMayImm: true, latency: 2},
	OpFMul:   {name: "fmul", dst: fileFloat, a: fileFloat, b: fileFloat, bMayImm: true, latency: 2},
	OpFDiv:   {name: "fdiv", dst: fileFloat, a: fileFloat, b: fileFloat, bMayImm: true, latency: 10},
	OpFMin:   {name: "fmin", dst: fileFloat, a: fileFloat, b: fileFloat, bMayImm: true, latency: 2},
	OpFMax:   {name: "fmax", dst: fileFloat, a: fileFloat, b: fileFloat, bMayImm: true, latency: 2},
	OpFNeg:   {name: "fneg", dst: fileFloat, a: fileFloat, latency: 1},
	OpFAbs:   {name: "fabs", dst: fileFloat, a: fileFloat, latency: 1},
	OpFSqrt:  {name: "fsqrt", dst: fileFloat, a: fileFloat, latency: 12},
	OpFExp:   {name: "fexp", dst: fileFloat, a: fileFloat, latency: 16},
	OpFLog:   {name: "flog", dst: fileFloat, a: fileFloat, latency: 16},
	OpFSin:   {name: "fsin", dst: fileFloat, a: fileFloat, latency: 16},
	OpFCos:   {name: "fcos", dst: fileFloat, a: fileFloat, latency: 16},
	OpFMA:    {name: "fma", dst: fileFloat, a: fileFloat, b: fileFloat, c: fileFloat, latency: 2},
	OpFSetEQ: {name: "fseteq", dst: fileInt, a: fileFloat, b: fileFloat, bMayImm: true, latency: 2},
	OpFSetNE: {name: "fsetne", dst: fileInt, a: fileFloat, b: fileFloat, bMayImm: true, latency: 2},
	OpFSetLT: {name: "fsetlt", dst: fileInt, a: fileFloat, b: fileFloat, bMayImm: true, latency: 2},
	OpFSetLE: {name: "fsetle", dst: fileInt, a: fileFloat, b: fileFloat, bMayImm: true, latency: 2},
	OpFSetGT: {name: "fsetgt", dst: fileInt, a: fileFloat, b: fileFloat, bMayImm: true, latency: 2},
	OpFSetGE: {name: "fsetge", dst: fileInt, a: fileFloat, b: fileFloat, bMayImm: true, latency: 2},
	OpItoF:   {name: "itof", dst: fileFloat, a: fileInt, latency: 2},
	OpFtoI:   {name: "ftoi", dst: fileInt, a: fileFloat, latency: 2},

	OpTid:        {name: "tid", dst: fileInt, latency: 1},
	OpLane:       {name: "lane", dst: fileInt, latency: 1},
	OpNumThreads: {name: "nthreads", dst: fileInt, latency: 1},
	OpRand:       {name: "rand", dst: fileInt, latency: 4},
	OpFRand:      {name: "frand", dst: fileFloat, latency: 4},

	OpLoad:     {name: "ld", dst: fileInt, a: fileInt, imm: immOffset, latency: 2},
	OpStore:    {name: "st", a: fileInt, b: fileInt, imm: immOffset, latency: 2},
	OpFLoad:    {name: "fld", dst: fileFloat, a: fileInt, imm: immOffset, latency: 2},
	OpFStore:   {name: "fst", a: fileInt, b: fileFloat, imm: immOffset, latency: 2},
	OpAtomAdd:  {name: "atomadd", dst: fileInt, a: fileInt, b: fileInt, imm: immOffset, latency: 4},
	OpFAtomAdd: {name: "fatomadd", dst: fileFloat, a: fileInt, b: fileFloat, imm: immOffset, latency: 4},

	OpJoin:     {name: "join", bar: true, latency: 1},
	OpWait:     {name: "wait", bar: true, latency: 1},
	OpWaitN:    {name: "waitn", bar: true, imm: immThreshold, latency: 1},
	OpCancel:   {name: "cancel", bar: true, latency: 1},
	OpArrived:  {name: "arrived", dst: fileInt, bar: true, latency: 1},
	OpWarpSync: {name: "warpsync", latency: 1},
	OpVoteAny:  {name: "voteany", dst: fileInt, a: fileInt, latency: 2},
	OpVoteAll:  {name: "voteall", dst: fileInt, a: fileInt, latency: 2},
	OpBallot:   {name: "ballot", dst: fileInt, a: fileInt, latency: 2},

	OpCTAId:   {name: "ctaid", dst: fileInt, latency: 1},
	OpCTATid:  {name: "ctatid", dst: fileInt, latency: 1},
	OpCTASize: {name: "ctasize", dst: fileInt, latency: 1},
	OpCTABar:  {name: "ctabar", wgbar: true, latency: 1},

	OpSharedLoad:   {name: "lds", dst: fileInt, a: fileInt, imm: immOffset, latency: 2},
	OpSharedStore:  {name: "sts", a: fileInt, b: fileInt, imm: immOffset, latency: 2},
	OpFSharedLoad:  {name: "flds", dst: fileFloat, a: fileInt, imm: immOffset, latency: 2},
	OpFSharedStore: {name: "fsts", a: fileInt, b: fileFloat, imm: immOffset, latency: 2},

	OpCall: {name: "call", call: true, latency: 2},
	OpBr:   {name: "br", term: true, nsucc: 1, latency: 1},
	OpCBr:  {name: "cbr", a: fileInt, term: true, nsucc: 2, latency: 1},
	OpRet:  {name: "ret", term: true, latency: 1},
	OpExit: {name: "exit", term: true, latency: 1},
	OpNop:  {name: "nop", latency: 1},
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, numOpcodes)
	for op := Opcode(1); op < numOpcodes; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// String returns the assembly mnemonic of the opcode.
func (op Opcode) String() string {
	if op >= numOpcodes {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// OpcodeByName returns the opcode with the given assembly mnemonic.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opByName[name]
	return op, ok
}

// Info accessors used across packages.

// IsTerminator reports whether the opcode ends a basic block.
func (op Opcode) IsTerminator() bool { return opTable[op].term }

// NumSuccs returns the successor count a terminator requires.
func (op Opcode) NumSuccs() int { return opTable[op].nsucc }

// Latency returns the base issue latency in simulator cycles.
func (op Opcode) Latency() int { return opTable[op].latency }

// IsBarrierOp reports whether the opcode references a warp
// convergence-barrier register. CTA workgroup barriers (OpCTABar) live
// in a separate namespace and are excluded, so the barrier allocator and
// the barrier-state analyses never confuse the two.
func (op Opcode) IsBarrierOp() bool { return opTable[op].bar }

// IsCTABarrier reports whether the opcode is the CTA workgroup barrier.
func (op Opcode) IsCTABarrier() bool { return opTable[op].wgbar }

// IsMemory reports whether the opcode accesses global memory.
func (op Opcode) IsMemory() bool {
	switch op {
	case OpLoad, OpStore, OpFLoad, OpFStore, OpAtomAdd, OpFAtomAdd:
		return true
	}
	return false
}

// IsSharedMemory reports whether the opcode accesses the CTA's shared
// memory segment. Shared accesses are not subject to the global-memory
// coalescer or cache.
func (op Opcode) IsSharedMemory() bool {
	switch op {
	case OpSharedLoad, OpSharedStore, OpFSharedLoad, OpFSharedStore:
		return true
	}
	return false
}

// IsDivergenceSource reports whether the opcode produces a value that
// differs across lanes regardless of its inputs.
func (op Opcode) IsDivergenceSource() bool {
	switch op {
	case OpTid, OpLane, OpRand, OpFRand, OpCTATid:
		return true
	}
	return false
}

// IsWarpSynchronous reports whether the opcode communicates across the
// lanes of its issuing group, making its result convergence-dependent.
func (op Opcode) IsWarpSynchronous() bool {
	switch op {
	case OpWarpSync, OpVoteAny, OpVoteAll, OpBallot:
		return true
	}
	return false
}

// HasDst reports whether the opcode writes a destination register, and
// which file it writes.
func (op Opcode) HasDst() (regFile, bool) {
	f := opTable[op].dst
	return f, f != fileNone
}

// OperandFile identifies which register file an operand slot uses, for
// consumers outside this package (liveness, divergence analysis, the
// simulator's decoder).
type OperandFile uint8

const (
	FileNone OperandFile = iota
	FileInt
	FileFloat
)

// OperandSig is the externally visible operand signature of an opcode.
type OperandSig struct {
	Dst, A, B, C OperandFile
	BMayImm      bool
}

// OperandFiles returns the operand signature of op.
func OperandFiles(op Opcode) OperandSig {
	info := &opTable[op]
	conv := func(f regFile) OperandFile {
		switch f {
		case fileInt:
			return FileInt
		case fileFloat:
			return FileFloat
		}
		return FileNone
	}
	return OperandSig{
		Dst:     conv(info.dst),
		A:       conv(info.a),
		B:       conv(info.b),
		C:       conv(info.c),
		BMayImm: info.bMayImm,
	}
}
