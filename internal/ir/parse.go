package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a module in the textual format produced by Print. It is the
// inverse of Print up to formatting: Parse(Print(m)) yields a module that
// prints identically (a property verified by the round-trip tests).
func Parse(src string) (*Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	m, err := p.module()
	if err != nil {
		return nil, fmt.Errorf("line %d: %w", p.pos, err)
	}
	if err := VerifyModule(m); err != nil {
		return nil, fmt.Errorf("parsed module fails verification: %w", err)
	}
	return m, nil
}

type parser struct {
	lines []string
	pos   int // 1-based line number of the line most recently consumed
}

// next returns the next non-empty, non-comment line, trimmed, or ok=false
// at end of input.
func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		p.pos++
		if i := strings.IndexByte(ln, ';'); i >= 0 {
			ln = ln[:i]
		}
		ln = strings.TrimSpace(ln)
		if ln != "" {
			return ln, true
		}
	}
	return "", false
}

func (p *parser) module() (*Module, error) {
	ln, ok := p.next()
	if !ok {
		return nil, fmt.Errorf("empty input")
	}
	fields := strings.Fields(ln)
	if len(fields) < 2 || fields[0] != "module" {
		return nil, fmt.Errorf("expected 'module <name> ...', got %q", ln)
	}
	m := NewModule(fields[1])
	for _, kv := range fields[2:] {
		k, v, found := strings.Cut(kv, "=")
		if !found {
			return nil, fmt.Errorf("malformed module attribute %q", kv)
		}
		switch k {
		case "memwords":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("memwords: %v", err)
			}
			m.MemWords = n
		case "sharedwords":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("sharedwords: %v", err)
			}
			m.SharedWords = n
		default:
			return nil, fmt.Errorf("unknown module attribute %q", k)
		}
	}
	for {
		ln, ok := p.next()
		if !ok {
			break
		}
		if !strings.HasPrefix(ln, "func ") {
			return nil, fmt.Errorf("expected 'func', got %q", ln)
		}
		if err := p.function(m, ln); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// pendingPred is a prediction directive seen during the first pass, with
// block references still by name.
type pendingPred struct {
	at        string
	label     string
	callee    string
	threshold int
}

// pendingSuccs records a block's successor names for the second pass.
type pendingSuccs struct {
	block *Block
	names []string
}

func (p *parser) function(m *Module, header string) error {
	fields := strings.Fields(strings.TrimSuffix(strings.TrimSpace(header), "{"))
	if len(fields) < 2 || !strings.HasPrefix(fields[1], "@") {
		return fmt.Errorf("malformed func header %q", header)
	}
	f := m.NewFunction(strings.TrimPrefix(fields[1], "@"))
	for _, kv := range fields[2:] {
		k, v, found := strings.Cut(kv, "=")
		if !found {
			return fmt.Errorf("malformed func attribute %q", kv)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("func attribute %s: %v", k, err)
		}
		switch k {
		case "nregs":
			f.NRegs = n
		case "nfregs":
			f.NFRegs = n
		default:
			return fmt.Errorf("unknown func attribute %q", k)
		}
	}

	var cur *Block
	var succs []pendingSuccs
	var preds []pendingPred
	for {
		ln, ok := p.next()
		if !ok {
			return fmt.Errorf("unterminated function %q", f.Name)
		}
		if ln == "}" {
			break
		}
		if strings.HasSuffix(ln, ":") && !strings.Contains(ln, " ") {
			cur = f.NewBlock(strings.TrimSuffix(ln, ":"))
			continue
		}
		if cur == nil {
			return fmt.Errorf("instruction %q before any block label", ln)
		}
		if strings.HasPrefix(ln, ".predict") {
			pp, err := parsePredict(ln, cur.Name)
			if err != nil {
				return err
			}
			preds = append(preds, pp)
			continue
		}
		in, succNames, err := parseInstr(ln)
		if err != nil {
			return fmt.Errorf("%q: %w", ln, err)
		}
		cur.Instrs = append(cur.Instrs, in)
		if len(succNames) > 0 {
			succs = append(succs, pendingSuccs{block: cur, names: succNames})
		}
	}

	// Second pass: resolve successor and prediction block names.
	for _, ps := range succs {
		for _, name := range ps.names {
			t := f.BlockByName(name)
			if t == nil {
				return fmt.Errorf("func %q: undefined block %q", f.Name, name)
			}
			ps.block.Succs = append(ps.block.Succs, t)
		}
	}
	for _, pp := range preds {
		pred := Prediction{Threshold: pp.threshold, Callee: pp.callee}
		pred.At = f.BlockByName(pp.at)
		if pp.label != "" {
			pred.Label = f.BlockByName(pp.label)
			if pred.Label == nil {
				return fmt.Errorf("func %q: prediction label %q undefined", f.Name, pp.label)
			}
		}
		f.Predictions = append(f.Predictions, pred)
	}
	f.Reindex()
	return nil
}

func parsePredict(ln, atBlock string) (pendingPred, error) {
	fields := strings.Fields(ln)
	pp := pendingPred{at: atBlock}
	if len(fields) < 2 {
		return pp, fmt.Errorf("malformed directive %q", ln)
	}
	switch fields[0] {
	case ".predict":
		pp.label = fields[1]
	case ".predictcall":
		pp.callee = strings.TrimPrefix(fields[1], "@")
	default:
		return pp, fmt.Errorf("unknown directive %q", fields[0])
	}
	for _, kv := range fields[2:] {
		k, v, found := strings.Cut(kv, "=")
		if !found || k != "threshold" {
			return pp, fmt.Errorf("malformed directive attribute %q", kv)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return pp, fmt.Errorf("threshold: %v", err)
		}
		pp.threshold = n
	}
	return pp, nil
}

// parseInstr parses one instruction line; terminator successor names are
// returned separately for the caller's second pass.
func parseInstr(ln string) (Instr, []string, error) {
	in := Instr{Dst: NoReg, A: NoReg, B: NoReg, C: NoReg}
	mnemonic, rest, _ := strings.Cut(ln, " ")
	op, ok := OpcodeByName(mnemonic)
	if !ok {
		return in, nil, fmt.Errorf("unknown opcode %q", mnemonic)
	}
	in.Op = op
	info := &opTable[op]

	var toks []string
	for _, t := range strings.Split(rest, ",") {
		t = strings.TrimSpace(t)
		if t != "" {
			toks = append(toks, t)
		}
	}
	pop := func() (string, error) {
		if len(toks) == 0 {
			return "", fmt.Errorf("missing operand for %s", mnemonic)
		}
		t := toks[0]
		toks = toks[1:]
		return t, nil
	}
	reg := func(file regFile) (Reg, error) {
		t, err := pop()
		if err != nil {
			return NoReg, err
		}
		want := byte('r')
		if file == fileFloat {
			want = 'f'
		}
		if len(t) < 2 || t[0] != want {
			return NoReg, fmt.Errorf("expected %c-register, got %q", want, t)
		}
		n, err := strconv.Atoi(t[1:])
		if err != nil {
			return NoReg, fmt.Errorf("bad register %q", t)
		}
		return Reg(n), nil
	}
	memOperand := func() error {
		t, err := pop()
		if err != nil {
			return err
		}
		if !strings.HasPrefix(t, "[") || !strings.HasSuffix(t, "]") {
			return fmt.Errorf("expected memory operand, got %q", t)
		}
		body := t[1 : len(t)-1]
		if body == "" {
			return fmt.Errorf("empty memory operand %q", t)
		}
		regPart := body
		var off int64
		if i := strings.IndexAny(body[1:], "+-"); i >= 0 {
			regPart = body[:i+1]
			off, err = strconv.ParseInt(body[i+1:], 10, 64)
			if err != nil {
				return fmt.Errorf("bad offset in %q", t)
			}
		}
		if len(regPart) < 2 || regPart[0] != 'r' {
			return fmt.Errorf("bad address register in %q", t)
		}
		n, err := strconv.Atoi(regPart[1:])
		if err != nil {
			return fmt.Errorf("bad address register in %q", t)
		}
		in.A = Reg(n)
		in.Imm = off
		return nil
	}
	valueOperand := func(file regFile) error {
		if len(toks) > 0 && strings.HasPrefix(toks[0], "#") {
			t, _ := pop()
			in.BImm = true
			return parseImm(&in, t[1:], file)
		}
		r, err := reg(file)
		if err != nil {
			return err
		}
		in.B = r
		return nil
	}

	var err error
	switch op {
	case OpLoad, OpFLoad, OpSharedLoad, OpFSharedLoad:
		if in.Dst, err = reg(info.dst); err != nil {
			return in, nil, err
		}
		if err = memOperand(); err != nil {
			return in, nil, err
		}
	case OpStore, OpFStore, OpSharedStore, OpFSharedStore:
		if err = memOperand(); err != nil {
			return in, nil, err
		}
		if err = valueOperand(info.b); err != nil {
			return in, nil, err
		}
	case OpAtomAdd, OpFAtomAdd:
		if in.Dst, err = reg(info.dst); err != nil {
			return in, nil, err
		}
		if err = memOperand(); err != nil {
			return in, nil, err
		}
		if err = valueOperand(info.b); err != nil {
			return in, nil, err
		}
	default:
		if info.dst != fileNone {
			if in.Dst, err = reg(info.dst); err != nil {
				return in, nil, err
			}
		}
		if info.a != fileNone {
			if in.A, err = reg(info.a); err != nil {
				return in, nil, err
			}
		}
		if info.b != fileNone {
			if err = valueOperand(info.b); err != nil {
				return in, nil, err
			}
		}
		if info.c != fileNone {
			if in.C, err = reg(info.c); err != nil {
				return in, nil, err
			}
		}
		if info.bar || info.wgbar {
			t, err := pop()
			if err != nil {
				return in, nil, err
			}
			if len(t) < 2 || t[0] != 'b' {
				return in, nil, fmt.Errorf("expected barrier, got %q", t)
			}
			n, err := strconv.Atoi(t[1:])
			if err != nil {
				return in, nil, fmt.Errorf("bad barrier %q", t)
			}
			in.Bar = n
		}
		switch info.imm {
		case immInt:
			t, err := pop()
			if err != nil {
				return in, nil, err
			}
			if err = parseImm(&in, strings.TrimPrefix(t, "#"), fileInt); err != nil {
				return in, nil, err
			}
		case immFloat:
			t, err := pop()
			if err != nil {
				return in, nil, err
			}
			if err = parseImm(&in, strings.TrimPrefix(t, "#"), fileFloat); err != nil {
				return in, nil, err
			}
		case immThreshold:
			t, err := pop()
			if err != nil {
				return in, nil, err
			}
			n, err := strconv.ParseInt(t, 10, 64)
			if err != nil {
				return in, nil, fmt.Errorf("bad threshold %q", t)
			}
			in.Imm = n
		}
		if info.call {
			t, err := pop()
			if err != nil {
				return in, nil, err
			}
			in.Callee = strings.TrimPrefix(t, "@")
		}
		if info.term && info.nsucc > 0 {
			if len(toks) != info.nsucc {
				return in, nil, fmt.Errorf("%s wants %d successors, got %d", mnemonic, info.nsucc, len(toks))
			}
			names := toks
			toks = nil
			return in, names, nil
		}
	}
	if len(toks) != 0 {
		return in, nil, fmt.Errorf("trailing operands %v", toks)
	}
	return in, nil, nil
}

func parseImm(in *Instr, lit string, file regFile) error {
	if file == fileFloat {
		v, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return fmt.Errorf("bad float immediate %q", lit)
		}
		in.FImm = v
		return nil
	}
	v, err := strconv.ParseInt(lit, 10, 64)
	if err != nil {
		return fmt.Errorf("bad integer immediate %q", lit)
	}
	in.Imm = v
	return nil
}
