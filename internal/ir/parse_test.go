package ir

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

const sampleModule = `module sample memwords=256

func @helper nregs=2 nfregs=2 {
helper_entry:
  fadd f1, f0, #2.5
  fmov f0, f1
  ret
}

func @kernel nregs=8 nfregs=4 {
entry:
  .predict hot threshold=16
  tid r0
  const r1, #0
  fconst f0, #0.0
  br header
header:
  setlt r2, r1, #10
  cbr r2, body, done
body:
  frand f1
  fsetlt r3, f1, #0.25
  join b0
  cbr r3, hot, cold
hot:
  cancel b0
  waitn b1, 16
  join b1
  ld r4, [r0+32]
  fld f2, [r4]
  fma f3, f1, f2, f0
  fmov f0, f3
  call @helper
  br cold
cold:
  wait b0
  st [r0+64], r4
  atomadd r5, [r0], r4
  arrived r6, b1
  add r1, r1, #1
  br header
done:
  fst [r0], f0
  warpsync
  exit
}
`

func TestParsePrintRoundTrip(t *testing.T) {
	m, err := Parse(sampleModule)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	p1 := Print(m)
	m2, err := Parse(p1)
	if err != nil {
		t.Fatalf("Parse(Print): %v\n%s", err, p1)
	}
	p2 := Print(m2)
	if p1 != p2 {
		t.Fatalf("round trip unstable:\n--- first ---\n%s\n--- second ---\n%s", p1, p2)
	}
}

func TestParsePreservesStructure(t *testing.T) {
	m, err := Parse(sampleModule)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Name != "sample" || m.MemWords != 256 {
		t.Fatalf("module header wrong: %q %d", m.Name, m.MemWords)
	}
	if len(m.Funcs) != 2 {
		t.Fatalf("want 2 functions, got %d", len(m.Funcs))
	}
	k := m.FuncByName("kernel")
	if k == nil {
		t.Fatal("kernel missing")
	}
	if len(k.Predictions) != 1 {
		t.Fatalf("want 1 prediction, got %d", len(k.Predictions))
	}
	p := k.Predictions[0]
	if p.At.Name != "entry" || p.Label.Name != "hot" || p.Threshold != 16 {
		t.Fatalf("prediction wrong: %+v", p)
	}
	hot := k.BlockByName("hot")
	if hot == nil || hot.Instrs[1].Op != OpWaitN || hot.Instrs[1].Imm != 16 {
		t.Fatalf("waitn not parsed: %+v", hot.Instrs[1])
	}
	body := k.BlockByName("body")
	term := body.Terminator()
	if term.Op != OpCBr || body.Succs[0].Name != "hot" || body.Succs[1].Name != "cold" {
		t.Fatalf("cbr successors wrong: %v", body.Succs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"empty", "", "empty input"},
		{"no module", "func @f {", "expected 'module"},
		{"bad opcode", "module m\nfunc @f nregs=1 nfregs=0 {\ne:\n  bogus r0\n  exit\n}", "unknown opcode"},
		{"bad register", "module m\nfunc @f nregs=1 nfregs=0 {\ne:\n  mov x0, r0\n  exit\n}", "expected r-register"},
		{"undefined block", "module m\nfunc @f nregs=1 nfregs=0 {\ne:\n  br nowhere\n}", "undefined block"},
		{"unterminated", "module m\nfunc @f nregs=1 nfregs=0 {\ne:\n  exit", "unterminated function"},
		{"trailing operand", "module m\nfunc @f nregs=2 nfregs=0 {\ne:\n  mov r0, r1, r1\n  exit\n}", "trailing operands"},
		{"bad threshold", "module m\nfunc @f nregs=1 nfregs=0 {\ne:\n  waitn b0, x\n  exit\n}", "bad threshold"},
		{"instr before block", "module m\nfunc @f nregs=1 nfregs=0 {\n  exit\n}", "before any block"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseComments(t *testing.T) {
	src := "module m ; trailing comment\n" +
		"; full line comment\n" +
		"func @f nregs=1 nfregs=0 {\n" +
		"e: ; block comment\n" +
		"  tid r0 ; instr comment\n" +
		"  exit\n" +
		"}\n"
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse with comments: %v", err)
	}
	if m.Funcs[0].Entry().Instrs[0].Op != OpTid {
		t.Fatal("comment handling broke instruction parsing")
	}
}

// TestFormatInstrQuickRoundTrip is a property test: any well-formed ALU
// instruction survives a format/parse cycle.
func TestFormatInstrQuickRoundTrip(t *testing.T) {
	alu := []Opcode{OpAdd, OpSub, OpMul, OpDiv, OpMin, OpMax, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpSetEQ, OpSetNE, OpSetLT, OpSetLE, OpSetGT, OpSetGE}
	check := func(opIdx uint8, d, a, bb uint8, useImm bool, imm int64) bool {
		op := alu[int(opIdx)%len(alu)]
		in := Instr{Op: op, Dst: Reg(d % 16), A: Reg(a % 16), B: Reg(bb % 16), C: NoReg}
		if useImm {
			in.B = NoReg
			in.BImm = true
			in.Imm = imm
		}
		text := FormatInstr(&in, nil)
		parsed, succ, err := parseInstr(text)
		if err != nil || len(succ) != 0 {
			t.Logf("parse %q: %v", text, err)
			return false
		}
		return parsed.Op == in.Op && parsed.Dst == in.Dst && parsed.A == in.A &&
			parsed.BImm == in.BImm && (in.BImm && parsed.Imm == in.Imm || !in.BImm && parsed.B == in.B)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFloatImmRoundTrip checks float immediates survive formatting
// exactly (bit-for-bit) for finite values.
func TestFloatImmRoundTrip(t *testing.T) {
	check := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true // printer targets finite literals
		}
		in := Instr{Op: OpFConst, Dst: 0, A: NoReg, B: NoReg, C: NoReg, FImm: v}
		text := FormatInstr(&in, nil)
		parsed, _, err := parseInstr(text)
		if err != nil {
			t.Logf("parse %q: %v", text, err)
			return false
		}
		return math.Float64bits(parsed.FImm) == math.Float64bits(v)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryOperandForms(t *testing.T) {
	cases := []string{
		"ld r1, [r2]",
		"ld r1, [r2+8]",
		"ld r1, [r2-4]",
		"st [r0+1], r3",
		"fatomadd f1, [r2+3], f0",
	}
	for _, src := range cases {
		in, _, err := parseInstr(src)
		if err != nil {
			t.Errorf("parseInstr(%q): %v", src, err)
			continue
		}
		out := FormatInstr(&in, nil)
		in2, _, err := parseInstr(out)
		if err != nil {
			t.Errorf("re-parse of %q (from %q): %v", out, src, err)
			continue
		}
		if in != in2 {
			t.Errorf("%q round trip changed: %+v vs %+v", src, in, in2)
		}
	}
}
