package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders the module in the textual assembly format understood by
// Parse. The format is line-oriented:
//
//	module rsbench memwords=8192
//
//	func @kernel nregs=14 nfregs=6 {
//	entry:
//	  .predict hot threshold=16
//	  tid r0
//	  add r1, r0, #5
//	  ld r2, [r1+8]
//	  join b0
//	  cbr r2, hot, cold
//	hot:
//	  ...
//	}
//
// Predictions are printed as .predict / .predictcall directives at the top
// of their region-start block.
func Print(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s memwords=%d", m.Name, m.MemWords)
	if m.SharedWords > 0 {
		fmt.Fprintf(&sb, " sharedwords=%d", m.SharedWords)
	}
	sb.WriteString("\n")
	for _, f := range m.Funcs {
		sb.WriteString("\n")
		printFunction(&sb, f)
	}
	return sb.String()
}

// PrintFunction renders one function in the assembly format.
func PrintFunction(f *Function) string {
	var sb strings.Builder
	printFunction(&sb, f)
	return sb.String()
}

func printFunction(sb *strings.Builder, f *Function) {
	fmt.Fprintf(sb, "func @%s nregs=%d nfregs=%d {\n", f.Name, f.NRegs, f.NFRegs)
	for _, b := range f.Blocks {
		fmt.Fprintf(sb, "%s:\n", b.Name)
		for _, p := range f.Predictions {
			if p.At != b {
				continue
			}
			if p.Callee != "" {
				fmt.Fprintf(sb, "  .predictcall @%s", p.Callee)
			} else {
				fmt.Fprintf(sb, "  .predict %s", p.Label.Name)
			}
			if p.Threshold != 0 {
				fmt.Fprintf(sb, " threshold=%d", p.Threshold)
			}
			sb.WriteString("\n")
		}
		for i := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(FormatInstr(&b.Instrs[i], b))
			sb.WriteString("\n")
		}
	}
	sb.WriteString("}\n")
}

// FormatInstr renders a single instruction. The owning block is needed to
// name branch successors; it may be nil for non-terminators.
func FormatInstr(in *Instr, b *Block) string {
	info := &opTable[in.Op]
	var ops []string

	mem := func(addr Reg, off int64) string {
		if off == 0 {
			return fmt.Sprintf("[r%d]", addr)
		}
		return fmt.Sprintf("[r%d%+d]", addr, off)
	}
	regTok := func(r Reg, file regFile) string {
		if file == fileFloat {
			return fmt.Sprintf("f%d", r)
		}
		return fmt.Sprintf("r%d", r)
	}

	switch in.Op {
	case OpLoad, OpFLoad, OpSharedLoad, OpFSharedLoad:
		ops = []string{regTok(in.Dst, info.dst), mem(in.A, in.Imm)}
	case OpStore, OpFStore, OpSharedStore, OpFSharedStore:
		v := regTok(in.B, info.b)
		if in.BImm {
			v = immTok(in, info)
		}
		ops = []string{mem(in.A, in.Imm), v}
	case OpAtomAdd, OpFAtomAdd:
		v := regTok(in.B, info.b)
		if in.BImm {
			v = immTok(in, info)
		}
		ops = []string{regTok(in.Dst, info.dst), mem(in.A, in.Imm), v}
	default:
		if info.dst != fileNone {
			ops = append(ops, regTok(in.Dst, info.dst))
		}
		if info.a != fileNone {
			ops = append(ops, regTok(in.A, info.a))
		}
		if info.b != fileNone {
			if in.BImm {
				ops = append(ops, immTok(in, info))
			} else {
				ops = append(ops, regTok(in.B, info.b))
			}
		}
		if info.c != fileNone {
			ops = append(ops, regTok(in.C, info.c))
		}
		if info.bar || info.wgbar {
			ops = append(ops, fmt.Sprintf("b%d", in.Bar))
		}
		switch info.imm {
		case immInt:
			ops = append(ops, "#"+strconv.FormatInt(in.Imm, 10))
		case immFloat:
			ops = append(ops, "#"+formatFloat(in.FImm))
		case immThreshold:
			ops = append(ops, strconv.FormatInt(in.Imm, 10))
		}
		if info.call {
			ops = append(ops, "@"+in.Callee)
		}
		if info.term && b != nil {
			for _, s := range b.Succs {
				ops = append(ops, s.Name)
			}
		}
	}
	if len(ops) == 0 {
		return info.name
	}
	return info.name + " " + strings.Join(ops, ", ")
}

func immTok(in *Instr, info *opInfo) string {
	if info.b == fileFloat {
		return "#" + formatFloat(in.FImm)
	}
	return "#" + strconv.FormatInt(in.Imm, 10)
}

func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// Ensure the token round-trips as a float even for integral values.
	if !strings.ContainsAny(s, ".eEnI") {
		s += ".0"
	}
	return s
}
