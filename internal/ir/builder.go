package ir

// Builder provides a convenient, cursor-based API for constructing
// functions. It allocates fresh registers on demand and keeps the
// function's register-file sizes up to date. The workload kernels in
// internal/workloads are written against this API.
type Builder struct {
	Fn  *Function
	cur *Block

	nextReg  Reg
	nextFReg Reg
	nextBar  int
}

// NewBuilder returns a builder positioned on no block. Fresh registers
// start above the function's current file sizes, so a builder may be used
// to extend an existing function.
func NewBuilder(f *Function) *Builder {
	return &Builder{
		Fn:       f,
		nextReg:  Reg(f.NRegs),
		nextFReg: Reg(f.NFRegs),
		nextBar:  f.MaxBarrier() + 1,
	}
}

// Block creates a new block and positions the builder on it.
func (b *Builder) Block(name string) *Block {
	blk := b.Fn.NewBlock(name)
	b.cur = blk
	return blk
}

// SetBlock positions the builder on an existing block.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Current returns the block under the cursor.
func (b *Builder) Current() *Block { return b.cur }

// Reg allocates a fresh integer register.
func (b *Builder) Reg() Reg {
	r := b.nextReg
	b.nextReg++
	if int(b.nextReg) > b.Fn.NRegs {
		b.Fn.NRegs = int(b.nextReg)
	}
	return r
}

// FReg allocates a fresh float register.
func (b *Builder) FReg() Reg {
	r := b.nextFReg
	b.nextFReg++
	if int(b.nextFReg) > b.Fn.NFRegs {
		b.Fn.NFRegs = int(b.nextFReg)
	}
	return r
}

// Barrier allocates a fresh virtual barrier register.
func (b *Builder) Barrier() int {
	n := b.nextBar
	b.nextBar++
	return n
}

// Emit appends a raw instruction to the current block.
func (b *Builder) Emit(in Instr) {
	if b.cur == nil {
		panic("ir: Builder.Emit with no current block")
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
}

// ---- integer ops ----

// Const emits dst = v into a fresh register and returns it.
func (b *Builder) Const(v int64) Reg {
	r := b.Reg()
	b.Emit(Instr{Op: OpConst, Dst: r, A: NoReg, B: NoReg, C: NoReg, Imm: v})
	return r
}

// Mov emits dst = a into a fresh register.
func (b *Builder) Mov(a Reg) Reg { return b.op2(OpMov, a) }

// MovTo emits dst = a into an existing register.
func (b *Builder) MovTo(dst, a Reg) {
	b.Emit(Instr{Op: OpMov, Dst: dst, A: a, B: NoReg, C: NoReg})
}

// ConstTo emits dst = v into an existing register.
func (b *Builder) ConstTo(dst Reg, v int64) {
	b.Emit(Instr{Op: OpConst, Dst: dst, A: NoReg, B: NoReg, C: NoReg, Imm: v})
}

func (b *Builder) op2(op Opcode, a Reg) Reg {
	var r Reg
	if f, _ := op.HasDst(); f == fileFloat {
		r = b.FReg()
	} else {
		r = b.Reg()
	}
	b.Emit(Instr{Op: op, Dst: r, A: a, B: NoReg, C: NoReg})
	return r
}

func (b *Builder) op3(op Opcode, a, bb Reg) Reg {
	var r Reg
	if f, _ := op.HasDst(); f == fileFloat {
		r = b.FReg()
	} else {
		r = b.Reg()
	}
	b.Emit(Instr{Op: op, Dst: r, A: a, B: bb, C: NoReg})
	return r
}

func (b *Builder) op3i(op Opcode, a Reg, imm int64) Reg {
	var r Reg
	if f, _ := op.HasDst(); f == fileFloat {
		r = b.FReg()
	} else {
		r = b.Reg()
	}
	b.Emit(Instr{Op: op, Dst: r, A: a, B: NoReg, C: NoReg, BImm: true, Imm: imm})
	return r
}

// Binary integer operations; the I-suffixed forms take an immediate B.

func (b *Builder) Add(a, c Reg) Reg        { return b.op3(OpAdd, a, c) }
func (b *Builder) AddI(a Reg, v int64) Reg { return b.op3i(OpAdd, a, v) }
func (b *Builder) Sub(a, c Reg) Reg        { return b.op3(OpSub, a, c) }
func (b *Builder) SubI(a Reg, v int64) Reg { return b.op3i(OpSub, a, v) }
func (b *Builder) Mul(a, c Reg) Reg        { return b.op3(OpMul, a, c) }
func (b *Builder) MulI(a Reg, v int64) Reg { return b.op3i(OpMul, a, v) }
func (b *Builder) Div(a, c Reg) Reg        { return b.op3(OpDiv, a, c) }
func (b *Builder) Mod(a, c Reg) Reg        { return b.op3(OpMod, a, c) }
func (b *Builder) ModI(a Reg, v int64) Reg { return b.op3i(OpMod, a, v) }
func (b *Builder) Min(a, c Reg) Reg        { return b.op3(OpMin, a, c) }
func (b *Builder) Max(a, c Reg) Reg        { return b.op3(OpMax, a, c) }
func (b *Builder) And(a, c Reg) Reg        { return b.op3(OpAnd, a, c) }
func (b *Builder) AndI(a Reg, v int64) Reg { return b.op3i(OpAnd, a, v) }
func (b *Builder) Or(a, c Reg) Reg         { return b.op3(OpOr, a, c) }
func (b *Builder) Xor(a, c Reg) Reg        { return b.op3(OpXor, a, c) }
func (b *Builder) XorI(a Reg, v int64) Reg { return b.op3i(OpXor, a, v) }
func (b *Builder) Shl(a, c Reg) Reg        { return b.op3(OpShl, a, c) }
func (b *Builder) ShlI(a Reg, v int64) Reg { return b.op3i(OpShl, a, v) }
func (b *Builder) ShrI(a Reg, v int64) Reg { return b.op3i(OpShr, a, v) }

func (b *Builder) SetEQ(a, c Reg) Reg        { return b.op3(OpSetEQ, a, c) }
func (b *Builder) SetEQI(a Reg, v int64) Reg { return b.op3i(OpSetEQ, a, v) }
func (b *Builder) SetNE(a, c Reg) Reg        { return b.op3(OpSetNE, a, c) }
func (b *Builder) SetNEI(a Reg, v int64) Reg { return b.op3i(OpSetNE, a, v) }
func (b *Builder) SetLT(a, c Reg) Reg        { return b.op3(OpSetLT, a, c) }
func (b *Builder) SetLTI(a Reg, v int64) Reg { return b.op3i(OpSetLT, a, v) }
func (b *Builder) SetLE(a, c Reg) Reg        { return b.op3(OpSetLE, a, c) }
func (b *Builder) SetGT(a, c Reg) Reg        { return b.op3(OpSetGT, a, c) }
func (b *Builder) SetGTI(a Reg, v int64) Reg { return b.op3i(OpSetGT, a, v) }
func (b *Builder) SetGE(a, c Reg) Reg        { return b.op3(OpSetGE, a, c) }
func (b *Builder) SetGEI(a Reg, v int64) Reg { return b.op3i(OpSetGE, a, v) }

// ---- float ops ----

// FConst emits fdst = v into a fresh float register.
func (b *Builder) FConst(v float64) Reg {
	r := b.FReg()
	b.Emit(Instr{Op: OpFConst, Dst: r, A: NoReg, B: NoReg, C: NoReg, FImm: v})
	return r
}

// FConstTo emits fdst = v into an existing float register.
func (b *Builder) FConstTo(dst Reg, v float64) {
	b.Emit(Instr{Op: OpFConst, Dst: dst, A: NoReg, B: NoReg, C: NoReg, FImm: v})
}

// FMovTo emits fdst = fa into an existing float register.
func (b *Builder) FMovTo(dst, a Reg) {
	b.Emit(Instr{Op: OpFMov, Dst: dst, A: a, B: NoReg, C: NoReg})
}

func (b *Builder) op3f(op Opcode, a Reg, v float64) Reg {
	r := b.FReg()
	if f, _ := op.HasDst(); f == fileInt {
		r = b.Reg()
	}
	b.Emit(Instr{Op: op, Dst: r, A: a, B: NoReg, C: NoReg, BImm: true, FImm: v})
	return r
}

func (b *Builder) FAdd(a, c Reg) Reg          { return b.op3(OpFAdd, a, c) }
func (b *Builder) FAddI(a Reg, v float64) Reg { return b.op3f(OpFAdd, a, v) }
func (b *Builder) FSub(a, c Reg) Reg          { return b.op3(OpFSub, a, c) }
func (b *Builder) FSubI(a Reg, v float64) Reg { return b.op3f(OpFSub, a, v) }
func (b *Builder) FMul(a, c Reg) Reg          { return b.op3(OpFMul, a, c) }
func (b *Builder) FMulI(a Reg, v float64) Reg { return b.op3f(OpFMul, a, v) }
func (b *Builder) FDiv(a, c Reg) Reg          { return b.op3(OpFDiv, a, c) }
func (b *Builder) FMinOp(a, c Reg) Reg        { return b.op3(OpFMin, a, c) }
func (b *Builder) FMaxOp(a, c Reg) Reg        { return b.op3(OpFMax, a, c) }
func (b *Builder) FNeg(a Reg) Reg             { return b.op2(OpFNeg, a) }
func (b *Builder) FAbs(a Reg) Reg             { return b.op2(OpFAbs, a) }
func (b *Builder) FSqrt(a Reg) Reg            { return b.op2(OpFSqrt, a) }
func (b *Builder) FExp(a Reg) Reg             { return b.op2(OpFExp, a) }
func (b *Builder) FLog(a Reg) Reg             { return b.op2(OpFLog, a) }
func (b *Builder) FSin(a Reg) Reg             { return b.op2(OpFSin, a) }
func (b *Builder) FCos(a Reg) Reg             { return b.op2(OpFCos, a) }

// FMA emits fdst = a*c + d.
func (b *Builder) FMA(a, c, d Reg) Reg {
	r := b.FReg()
	b.Emit(Instr{Op: OpFMA, Dst: r, A: a, B: c, C: d})
	return r
}

func (b *Builder) FSetLT(a, c Reg) Reg          { return b.op3(OpFSetLT, a, c) }
func (b *Builder) FSetLTI(a Reg, v float64) Reg { return b.op3f(OpFSetLT, a, v) }
func (b *Builder) FSetGT(a, c Reg) Reg          { return b.op3(OpFSetGT, a, c) }
func (b *Builder) FSetGTI(a Reg, v float64) Reg { return b.op3f(OpFSetGT, a, v) }
func (b *Builder) FSetGE(a, c Reg) Reg          { return b.op3(OpFSetGE, a, c) }
func (b *Builder) FSetLE(a, c Reg) Reg          { return b.op3(OpFSetLE, a, c) }
func (b *Builder) ItoF(a Reg) Reg               { return b.op2(OpItoF, a) }
func (b *Builder) FtoI(a Reg) Reg               { return b.op2(OpFtoI, a) }

// ---- divergence sources ----

func (b *Builder) Tid() Reg        { return b.op2(OpTid, NoReg) }
func (b *Builder) Lane() Reg       { return b.op2(OpLane, NoReg) }
func (b *Builder) NumThreads() Reg { return b.op2(OpNumThreads, NoReg) }
func (b *Builder) Rand() Reg       { return b.op2(OpRand, NoReg) }
func (b *Builder) FRand() Reg      { return b.op2(OpFRand, NoReg) }

// ---- memory ----

// Load emits dst = mem[addr+off].
func (b *Builder) Load(addr Reg, off int64) Reg {
	r := b.Reg()
	b.Emit(Instr{Op: OpLoad, Dst: r, A: addr, B: NoReg, C: NoReg, Imm: off})
	return r
}

// FLoad emits fdst = mem[addr+off] interpreted as a float.
func (b *Builder) FLoad(addr Reg, off int64) Reg {
	r := b.FReg()
	b.Emit(Instr{Op: OpFLoad, Dst: r, A: addr, B: NoReg, C: NoReg, Imm: off})
	return r
}

// Store emits mem[addr+off] = v.
func (b *Builder) Store(addr Reg, off int64, v Reg) {
	b.Emit(Instr{Op: OpStore, Dst: NoReg, A: addr, B: v, C: NoReg, Imm: off})
}

// FStore emits mem[addr+off] = fv.
func (b *Builder) FStore(addr Reg, off int64, v Reg) {
	b.Emit(Instr{Op: OpFStore, Dst: NoReg, A: addr, B: v, C: NoReg, Imm: off})
}

// AtomAdd emits dst = old mem[addr+off]; mem[addr+off] += v.
func (b *Builder) AtomAdd(addr Reg, off int64, v Reg) Reg {
	r := b.Reg()
	b.Emit(Instr{Op: OpAtomAdd, Dst: r, A: addr, B: v, C: NoReg, Imm: off})
	return r
}

// FAtomAdd emits fdst = old mem[addr+off]; mem[addr+off] += fv.
func (b *Builder) FAtomAdd(addr Reg, off int64, v Reg) Reg {
	r := b.FReg()
	b.Emit(Instr{Op: OpFAtomAdd, Dst: r, A: addr, B: v, C: NoReg, Imm: off})
	return r
}

// ---- barriers ----

func (b *Builder) Join(bar int) {
	b.Emit(Instr{Op: OpJoin, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Bar: bar})
}
func (b *Builder) Wait(bar int) {
	b.Emit(Instr{Op: OpWait, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Bar: bar})
}
func (b *Builder) Cancel(bar int) {
	b.Emit(Instr{Op: OpCancel, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Bar: bar})
}
func (b *Builder) WaitN(bar int, threshold int64) {
	b.Emit(Instr{Op: OpWaitN, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Bar: bar, Imm: threshold})
}
func (b *Builder) Arrived(bar int) Reg {
	r := b.Reg()
	b.Emit(Instr{Op: OpArrived, Dst: r, A: NoReg, B: NoReg, C: NoReg, Bar: bar})
	return r
}
func (b *Builder) WarpSync() { b.Emit(Instr{Op: OpWarpSync, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg}) }

// Warp-synchronous votes over the issuing group.

func (b *Builder) VoteAny(a Reg) Reg { return b.op2(OpVoteAny, a) }
func (b *Builder) VoteAll(a Reg) Reg { return b.op2(OpVoteAll, a) }
func (b *Builder) Ballot(a Reg) Reg  { return b.op2(OpBallot, a) }

// ---- control ----

// Call emits a call to the named function.
func (b *Builder) Call(name string) {
	b.Emit(Instr{Op: OpCall, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Callee: name})
}

// Br terminates the current block with an unconditional branch.
func (b *Builder) Br(to *Block) {
	b.Emit(Instr{Op: OpBr, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg})
	b.cur.Succs = []*Block{to}
}

// CBr terminates the current block with a conditional branch: cond != 0
// goes to then, otherwise to els.
func (b *Builder) CBr(cond Reg, then, els *Block) {
	b.Emit(Instr{Op: OpCBr, Dst: NoReg, A: cond, B: NoReg, C: NoReg})
	b.cur.Succs = []*Block{then, els}
}

// Ret terminates the current block with a return.
func (b *Builder) Ret() {
	b.Emit(Instr{Op: OpRet, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg})
	b.cur.Succs = nil
}

// Exit terminates the current block, ending the thread.
func (b *Builder) Exit() {
	b.Emit(Instr{Op: OpExit, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg})
	b.cur.Succs = nil
}

// Predict records a speculative-reconvergence annotation whose region
// starts at the current block and whose reconvergence point is label.
func (b *Builder) Predict(label *Block) {
	b.Fn.Predictions = append(b.Fn.Predictions, Prediction{At: b.cur, Label: label})
}

// PredictThreshold is Predict with a soft-barrier threshold.
func (b *Builder) PredictThreshold(label *Block, threshold int) {
	b.Fn.Predictions = append(b.Fn.Predictions, Prediction{At: b.cur, Label: label, Threshold: threshold})
}

// PredictCall records an interprocedural annotation: the reconvergence
// point is the entry of the named function.
func (b *Builder) PredictCall(callee string) {
	b.Fn.Predictions = append(b.Fn.Predictions, Prediction{At: b.cur, Callee: callee})
}
