package ir

import (
	"strings"
	"testing"
)

// buildDiamond constructs a small module with a diamond CFG used by
// several tests.
func buildDiamond(t *testing.T) (*Module, *Function) {
	t.Helper()
	m := NewModule("diamond")
	f := m.NewFunction("kernel")
	b := NewBuilder(f)

	entry := f.NewBlock("entry")
	thn := f.NewBlock("thn")
	els := f.NewBlock("els")
	merge := f.NewBlock("merge")

	b.SetBlock(entry)
	tid := b.Tid()
	c := b.AndI(tid, 1)
	b.CBr(c, thn, els)

	b.SetBlock(thn)
	b.Const(1)
	b.Br(merge)

	b.SetBlock(els)
	b.Const(2)
	b.Br(merge)

	b.SetBlock(merge)
	b.Exit()

	if err := VerifyModule(m); err != nil {
		t.Fatalf("diamond module invalid: %v", err)
	}
	return m, f
}

func TestBlockInsertAndRemove(t *testing.T) {
	_, f := buildDiamond(t)
	blk := f.BlockByName("thn")
	orig := len(blk.Instrs)

	blk.InsertTop(Instr{Op: OpNop})
	if blk.Instrs[0].Op != OpNop {
		t.Fatalf("InsertTop did not place at index 0: %v", blk.Instrs[0].Op)
	}
	blk.InsertBeforeTerminator(Instr{Op: OpNop})
	if blk.Instrs[len(blk.Instrs)-2].Op != OpNop {
		t.Fatalf("InsertBeforeTerminator misplaced")
	}
	if blk.Terminator().Op != OpBr {
		t.Fatalf("terminator changed: %v", blk.Terminator().Op)
	}
	if len(blk.Instrs) != orig+2 {
		t.Fatalf("length = %d, want %d", len(blk.Instrs), orig+2)
	}
	blk.RemoveAt(0)
	if len(blk.Instrs) != orig+1 {
		t.Fatalf("RemoveAt failed")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m, f := buildDiamond(t)
	f.Predictions = append(f.Predictions, Prediction{At: f.Entry(), Label: f.BlockByName("thn")})

	clone := m.Clone()
	cf := clone.FuncByName("kernel")
	if cf == f {
		t.Fatal("clone returned the same function pointer")
	}
	// Mutating the clone must not affect the original.
	cf.BlockByName("thn").InsertTop(Instr{Op: OpNop})
	if len(f.BlockByName("thn").Instrs) == len(cf.BlockByName("thn").Instrs) {
		t.Fatal("clone shares instruction storage with the original")
	}
	// Successor edges must point into the clone.
	for _, b := range cf.Blocks {
		for _, s := range b.Succs {
			if s.Name != "" && cf.BlockByName(s.Name) != s {
				t.Fatalf("clone block %q successor %q not remapped", b.Name, s.Name)
			}
		}
	}
	// Predictions must be remapped.
	if cf.Predictions[0].At != cf.Entry() || cf.Predictions[0].Label != cf.BlockByName("thn") {
		t.Fatal("clone predictions not remapped onto cloned blocks")
	}
	if err := VerifyModule(clone); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m, f := buildDiamond(t)
	blk := f.BlockByName("thn")
	blk.Instrs = blk.Instrs[:len(blk.Instrs)-1] // drop the br
	if err := VerifyModule(m); err == nil || !strings.Contains(err.Error(), "not a terminator") {
		t.Fatalf("want missing-terminator error, got %v", err)
	}
}

func TestVerifyCatchesBadSuccessorCount(t *testing.T) {
	m, f := buildDiamond(t)
	f.BlockByName("entry").Succs = f.BlockByName("entry").Succs[:1]
	if err := VerifyModule(m); err == nil || !strings.Contains(err.Error(), "successors") {
		t.Fatalf("want successor-count error, got %v", err)
	}
}

func TestVerifyCatchesRegisterOutOfRange(t *testing.T) {
	m, f := buildDiamond(t)
	f.BlockByName("thn").InsertTop(Instr{Op: OpMov, Dst: Reg(f.NRegs + 5), A: 0})
	if err := VerifyModule(m); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want out-of-range error, got %v", err)
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	m, f := buildDiamond(t)
	f.BlockByName("thn").InsertTop(Instr{Op: OpExit})
	if err := VerifyModule(m); err == nil || !strings.Contains(err.Error(), "before end of block") {
		t.Fatalf("want mid-block-terminator error, got %v", err)
	}
}

func TestVerifyCatchesUnknownCallee(t *testing.T) {
	m, f := buildDiamond(t)
	f.BlockByName("thn").InsertTop(Instr{Op: OpCall, Callee: "nope"})
	if err := VerifyModule(m); err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Fatalf("want undefined-function error, got %v", err)
	}
}

func TestVerifyCatchesDuplicateBlockNames(t *testing.T) {
	m, f := buildDiamond(t)
	f.BlockByName("thn").Name = "els"
	if err := VerifyModule(m); err == nil || !strings.Contains(err.Error(), "duplicate block name") {
		t.Fatalf("want duplicate-name error, got %v", err)
	}
}

func TestVerifyCatchesStaleIndex(t *testing.T) {
	m, f := buildDiamond(t)
	f.Blocks[1], f.Blocks[2] = f.Blocks[2], f.Blocks[1] // swap without Reindex
	if err := VerifyModule(m); err == nil || !strings.Contains(err.Error(), "stale index") {
		t.Fatalf("want stale-index error, got %v", err)
	}
	f.Reindex()
	if err := VerifyModule(m); err != nil {
		t.Fatalf("after Reindex module should verify: %v", err)
	}
}

func TestVerifyPredictions(t *testing.T) {
	m, f := buildDiamond(t)
	f.Predictions = []Prediction{{At: f.Entry()}} // neither label nor callee
	if err := VerifyModule(m); err == nil || !strings.Contains(err.Error(), "neither Label nor Callee") {
		t.Fatalf("want prediction error, got %v", err)
	}
	f.Predictions = []Prediction{{At: f.Entry(), Label: f.BlockByName("thn"), Threshold: 99}}
	if err := VerifyModule(m); err == nil || !strings.Contains(err.Error(), "threshold") {
		t.Fatalf("want threshold error, got %v", err)
	}
}

func TestBuilderRegisterSizing(t *testing.T) {
	m := NewModule("regs")
	f := m.NewFunction("kernel")
	b := NewBuilder(f)
	blk := f.NewBlock("entry")
	b.SetBlock(blk)
	r1 := b.Const(5)
	r2 := b.AddI(r1, 1)
	fr := b.FConst(1.5)
	_ = b.FAdd(fr, fr)
	_ = r2
	b.Exit()
	if f.NRegs < 2 {
		t.Errorf("NRegs = %d, want >= 2", f.NRegs)
	}
	if f.NFRegs < 2 {
		t.Errorf("NFRegs = %d, want >= 2", f.NFRegs)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("builder output invalid: %v", err)
	}
}

func TestMaxBarrier(t *testing.T) {
	m, f := buildDiamond(t)
	if got := f.MaxBarrier(); got != -1 {
		t.Fatalf("MaxBarrier on barrier-free function = %d, want -1", got)
	}
	f.BlockByName("thn").InsertTop(Instr{Op: OpJoin, Bar: 7})
	if got := f.MaxBarrier(); got != 7 {
		t.Fatalf("MaxBarrier = %d, want 7", got)
	}
	_ = m
}

func TestOpcodeTableConsistency(t *testing.T) {
	for op := Opcode(1); op < numOpcodes; op++ {
		info := opTable[op]
		if info.name == "" {
			t.Errorf("opcode %d has no name", op)
		}
		if info.latency <= 0 {
			t.Errorf("opcode %s has non-positive latency", info.name)
		}
		back, ok := OpcodeByName(info.name)
		if !ok || back != op {
			t.Errorf("OpcodeByName(%q) = %v, %v; want %v", info.name, back, ok, op)
		}
		if info.term && op != OpRet && op != OpExit && info.nsucc == 0 {
			t.Errorf("terminator %s has no successors and is not ret/exit", info.name)
		}
	}
}
