package ir

import (
	"fmt"
	"strings"
)

// DOT renders the function's control-flow graph in Graphviz dot syntax,
// one record-shaped node per basic block with its instructions, solid
// edges for branch targets. Prediction annotations are drawn as dashed
// edges from the region-start block to the label block. Useful for
// debugging pass output:
//
//	go run ./cmd/specrecon -kernel rsbench -mode spec -dot | dot -Tsvg ...
func DOT(f *Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", f.Name)
	sb.WriteString("  node [shape=record, fontname=\"monospace\", fontsize=10];\n")
	for _, b := range f.Blocks {
		var lines []string
		lines = append(lines, b.Name+":")
		for i := range b.Instrs {
			lines = append(lines, "  "+FormatInstr(&b.Instrs[i], b))
		}
		label := strings.Join(lines, "\\l") + "\\l"
		label = strings.ReplaceAll(label, "\"", "\\\"")
		label = strings.ReplaceAll(label, "{", "\\{")
		label = strings.ReplaceAll(label, "}", "\\}")
		label = strings.ReplaceAll(label, "<", "\\<")
		label = strings.ReplaceAll(label, ">", "\\>")
		fmt.Fprintf(&sb, "  %q [label=\"%s\"];\n", b.Name, label)
	}
	for _, b := range f.Blocks {
		for si, s := range b.Succs {
			attr := ""
			if b.Terminator().Op == OpCBr {
				if si == 0 {
					attr = " [label=\"T\"]"
				} else {
					attr = " [label=\"F\"]"
				}
			}
			fmt.Fprintf(&sb, "  %q -> %q%s;\n", b.Name, s.Name, attr)
		}
	}
	for _, p := range f.Predictions {
		if p.Label != nil {
			fmt.Fprintf(&sb, "  %q -> %q [style=dashed, color=blue, label=\"predict\"];\n", p.At.Name, p.Label.Name)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
