// Package ir defines the SIMT virtual instruction set used throughout this
// repository: a small register-machine ISA with per-thread integer and
// float register files, a flat global memory, function calls, and
// Volta-style convergence-barrier operations (join/wait/cancel, the BSSY,
// BSYNC and BREAK instructions of the paper's Table 1, plus a first-class
// soft-barrier wait).
//
// A Module holds Functions; a Function holds Blocks in layout order, the
// first of which is the entry block; a Block holds Instrs, the last of
// which must be a terminator, and explicit successor edges. Speculative
// reconvergence annotations (the paper's Predict(<label>) directive and
// reconvergence labels, section 4.1) are carried on the Function as
// Prediction values rather than as instructions, mirroring how the paper's
// compiler preserves them as side metadata through the pipeline.
//
// Calling convention: there are no register windows. By convention a
// caller passes arguments in low registers (r0..r7 / f0..f7) and keeps its
// own live state in high registers; a callee may clobber the low half of
// both files. The workloads in internal/workloads follow this convention.
package ir

import "fmt"

// Reg is a virtual register index within one of the two register files.
// Which file an operand uses is determined by its opcode's signature.
type Reg int16

// NoReg marks an unused register operand.
const NoReg Reg = -1

// WarpWidth is the number of lanes in a warp. The paper targets NVIDIA
// hardware, where warps are 32 threads wide.
const WarpWidth = 32

// NumBarrierRegs is the number of physical barrier registers per warp.
// Volta provides 16; the barrier allocator in internal/core maps virtual
// barriers onto this budget.
const NumBarrierRegs = 16

// Instr is one instruction. Operand meaning depends on Op; see the opInfo
// table in op.go. Unused fields are zero / NoReg.
type Instr struct {
	Op      Opcode
	Dst     Reg
	A, B, C Reg
	BImm    bool    // B operand is the immediate Imm (or FImm for float ops)
	Imm     int64   // integer immediate / memory offset / waitn threshold
	FImm    float64 // float immediate
	Bar     int     // barrier register (virtual until allocation)
	Callee  string  // call target
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator, plus explicit successor edges.
type Block struct {
	Name   string
	Instrs []Instr
	Succs  []*Block

	// Index is the block's position in Function.Blocks; maintained by
	// Function.Reindex and used as a dense key by the analyses.
	Index int
}

// Terminator returns the block's final instruction. It panics on an empty
// block; the verifier rejects those.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		panic(fmt.Sprintf("ir: block %q has no instructions", b.Name))
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// InsertAt inserts instr at position i (0 = block top).
func (b *Block) InsertAt(i int, instr Instr) {
	b.Instrs = append(b.Instrs, Instr{})
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = instr
}

// InsertTop inserts instr at the top of the block.
func (b *Block) InsertTop(instr Instr) { b.InsertAt(0, instr) }

// InsertBeforeTerminator inserts instr just before the terminator.
func (b *Block) InsertBeforeTerminator(instr Instr) {
	b.InsertAt(len(b.Instrs)-1, instr)
}

// RemoveAt removes the instruction at position i.
func (b *Block) RemoveAt(i int) {
	b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
}

// Prediction is one speculative-reconvergence annotation (paper section
// 4.1). At marks the start of the prediction region — the point where
// threads become candidates for reconvergence. Exactly one of Label and
// Callee is set: Label is a block of the same function marking the
// proposed reconvergence point; Callee names a function whose entry is the
// reconvergence point (the interprocedural variant of section 4.4).
// Threshold, when non-zero, requests a soft barrier (section 4.6) that
// releases once Threshold lanes have collected.
type Prediction struct {
	At        *Block
	Label     *Block
	Callee    string
	Threshold int
}

// Function is a procedure in the virtual ISA. Blocks[0] is the entry.
type Function struct {
	Name        string
	Blocks      []*Block
	NRegs       int // size of the integer register file this function needs
	NFRegs      int // size of the float register file
	Predictions []Prediction
}

// NewBlock appends a new empty block with the given name and returns it.
func (f *Function) NewBlock(name string) *Block {
	b := &Block{Name: name, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Reindex re-establishes Block.Index after blocks were inserted or removed.
func (f *Function) Reindex() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// Entry returns the function's entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		panic(fmt.Sprintf("ir: function %q has no blocks", f.Name))
	}
	return f.Blocks[0]
}

// BlockByName returns the block with the given name, or nil.
func (f *Function) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// NumInstrs returns the total instruction count of the function.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// MaxBarrier returns the highest barrier register index referenced by the
// function, or -1 if none.
func (f *Function) MaxBarrier() int {
	max := -1
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op.IsBarrierOp() && in.Bar > max {
				max = in.Bar
			}
		}
	}
	return max
}

// Module is a compilation unit: a set of functions plus launch defaults.
type Module struct {
	Name  string
	Funcs []*Function

	// MemWords is the size of global memory in 64-bit words that kernels
	// of this module expect; the simulator allocates at least this much.
	MemWords int

	// SharedWords is the size of the per-CTA shared-memory segment in
	// 64-bit words (the static shared allocation of the kernel). Zero
	// means the module uses no shared memory; the simulator rejects
	// shared-memory opcodes when no segment exists.
	SharedWords int
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name}
}

// NewFunction appends a new empty function and returns it.
func (m *Module) NewFunction(name string) *Function {
	f := &Function{Name: name}
	m.Funcs = append(m.Funcs, f)
	return f
}

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Function {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// NumInstrs returns the total instruction count across all functions.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// NumBarrierOps returns the number of barrier operations (join, wait,
// thresholded wait, cancel, arrived) across all functions.
func (m *Module) NumBarrierOps() int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op.IsBarrierOp() {
					n++
				}
			}
		}
	}
	return n
}

// MaxRegs returns the largest integer and float register file sizes
// required by any function in the module.
func (m *Module) MaxRegs() (nregs, nfregs int) {
	for _, f := range m.Funcs {
		if f.NRegs > nregs {
			nregs = f.NRegs
		}
		if f.NFRegs > nfregs {
			nfregs = f.NFRegs
		}
	}
	return nregs, nfregs
}

// Clone returns a deep copy of the module. Passes mutate IR in place, so
// experiment harnesses clone the pristine module before each variant.
func (m *Module) Clone() *Module {
	out := &Module{Name: m.Name, MemWords: m.MemWords, SharedWords: m.SharedWords}
	for _, f := range m.Funcs {
		out.Funcs = append(out.Funcs, f.Clone())
	}
	return out
}

// Clone returns a deep copy of the function, remapping successor edges and
// prediction block references onto the new blocks.
func (f *Function) Clone() *Function {
	nf := &Function{
		Name:   f.Name,
		NRegs:  f.NRegs,
		NFRegs: f.NFRegs,
	}
	remap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := nf.NewBlock(b.Name)
		nb.Instrs = append([]Instr(nil), b.Instrs...)
		remap[b] = nb
	}
	for _, b := range f.Blocks {
		nb := remap[b]
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, remap[s])
		}
	}
	for _, p := range f.Predictions {
		np := Prediction{Callee: p.Callee, Threshold: p.Threshold}
		if p.At != nil {
			np.At = remap[p.At]
		}
		if p.Label != nil {
			np.Label = remap[p.Label]
		}
		nf.Predictions = append(nf.Predictions, np)
	}
	return nf
}
