package obs

import (
	"math/bits"

	"specrecon/internal/ir"
	"specrecon/internal/simt"
)

// pcCounters is the per-static-instruction accumulator row. All fields
// are plain integers so the event handler is a few array writes.
type pcCounters struct {
	issues      int64 // warp instructions issued at this PC
	activeLanes int64 // sum of active lanes over those issues
	cycles      int64 // modeled cycles charged to issues at this PC
	memStall    int64 // cycles beyond base latency (memory transactions)
	barStall    int64 // lane-cycles spent blocked at this wait instruction
	waits       int64 // lane-block events at this PC (wait/waitn only)

	// Conditional-branch counters (OpCBr only).
	takenLanes    int64
	notTakenLanes int64
	divergent     int64 // issues whose group split across both edges
}

// barCounters aggregates one barrier register across the launch.
type barCounters struct {
	waits    int64 // lane-block events
	releases int64 // lane-release events
	blocked  int64 // total lane-cycles spent blocked on this barrier
}

// laneWaitState remembers, per warp lane, when and where it blocked so
// the release event can attribute the blocked time.
type laneWaitState struct {
	since  [ir.WarpWidth]int64
	waitPC [ir.WarpWidth]int32
}

// Profile is an nvprof-style per-PC profile of one (or more) launches.
// It implements simt.EventSink; attach it via simt.Config.Events. The
// zero value is not usable — construct with NewProfile over the exact
// module passed to simt.Run, so the dense PC numbering matches.
type Profile struct {
	mod  *ir.Module
	pcs  []simt.PCRef
	base []int64 // base (no-stall) latency per PC

	counters []pcCounters
	barriers []barCounters
	warps    []*laneWaitState

	issues      int64
	activeLanes int64
	cycles      int64
}

// NewProfile builds an empty profile sized for module m. m must be the
// compiled module that will run on the simulator (the PC numbering is
// positional).
func NewProfile(m *ir.Module) *Profile {
	pcs := simt.BuildPCTable(m)
	p := &Profile{
		mod:      m,
		pcs:      pcs,
		base:     make([]int64, len(pcs)),
		counters: make([]pcCounters, len(pcs)),
	}
	for i, ref := range pcs {
		op := m.Funcs[ref.Fn].Blocks[ref.Blk].Instrs[ref.Ins].Op
		p.base[i] = int64(op.Latency())
	}
	nbar := 1
	for _, f := range m.Funcs {
		if n := f.MaxBarrier() + 1; n > nbar {
			nbar = n
		}
		// ctabar workgroup barriers live outside MaxBarrier (they are not
		// convergence-barrier ops) but share the register numbering, so
		// size the table to cover them too.
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if in := &b.Instrs[i]; in.Op.IsCTABarrier() && in.Bar+1 > nbar {
					nbar = in.Bar + 1
				}
			}
		}
	}
	p.barriers = make([]barCounters, nbar)
	return p
}

// Fork returns a new empty profile for the same module, sharing p's
// immutable module-derived tables (PC table, base latencies) and
// pre-sizing the counter tables from them. Sharded launches should
// build one profile with NewProfile and Fork it per SM: the per-SM
// sinks then cost two slice allocations each instead of re-deriving
// the PC table per SM, and Merge never has to grow anything.
func (p *Profile) Fork() *Profile {
	return &Profile{
		mod:      p.mod,
		pcs:      p.pcs,
		base:     p.base,
		counters: make([]pcCounters, len(p.counters)),
		barriers: make([]barCounters, len(p.barriers)),
	}
}

// Reset zeroes every counter in place, keeping the tables (and any
// grown lane-wait state) allocated, so one profile can be reused
// across launches — e.g. as a per-SM sink in a sweep loop — without
// rebuilding it. Lane-wait state is transient between a wait and its
// release, so a profile of a completed launch carries none to clear.
func (p *Profile) Reset() {
	for i := range p.counters {
		p.counters[i] = pcCounters{}
	}
	for i := range p.barriers {
		p.barriers[i] = barCounters{}
	}
	for _, w := range p.warps {
		if w != nil {
			*w = laneWaitState{}
		}
	}
	p.issues, p.activeLanes, p.cycles = 0, 0, 0
}

// Merge folds o — a profile of the same module, typically one SM's
// profile of a sharded grid launch — into p: every per-PC and
// per-barrier counter adds, as do the launch-wide totals, so merging the
// per-SM profiles in SM order reproduces the single profile a serial
// run with one shared sink would have built. Transient lane-wait state
// is not merged (a completed SM has none).
func (p *Profile) Merge(o *Profile) {
	for i := range p.counters {
		if i >= len(o.counters) {
			break
		}
		pc, oc := &p.counters[i], &o.counters[i]
		pc.issues += oc.issues
		pc.activeLanes += oc.activeLanes
		pc.cycles += oc.cycles
		pc.memStall += oc.memStall
		pc.barStall += oc.barStall
		pc.waits += oc.waits
		pc.takenLanes += oc.takenLanes
		pc.notTakenLanes += oc.notTakenLanes
		pc.divergent += oc.divergent
	}
	for b := range p.barriers {
		if b >= len(o.barriers) {
			break
		}
		p.barriers[b].waits += o.barriers[b].waits
		p.barriers[b].releases += o.barriers[b].releases
		p.barriers[b].blocked += o.barriers[b].blocked
	}
	p.issues += o.issues
	p.activeLanes += o.activeLanes
	p.cycles += o.cycles
}

// warp returns (growing on demand) the wait state of warp w. Growth only
// happens the first time a warp blocks, never in the steady state.
func (p *Profile) warp(w int32) *laneWaitState {
	for int(w) >= len(p.warps) {
		p.warps = append(p.warps, nil)
	}
	if p.warps[w] == nil {
		p.warps[w] = &laneWaitState{}
	}
	return p.warps[w]
}

// Event implements simt.EventSink. It performs no allocation on the
// issue/branch path.
func (p *Profile) Event(ev simt.Event) {
	switch ev.Kind {
	case simt.EvIssue:
		if ev.PC < 0 || int(ev.PC) >= len(p.counters) {
			return
		}
		c := &p.counters[ev.PC]
		active := int64(bits.OnesCount32(ev.Mask))
		c.issues++
		c.activeLanes += active
		c.cycles += ev.Cost
		if stall := ev.Cost - p.base[ev.PC]; stall > 0 {
			c.memStall += stall
		}
		p.issues++
		p.activeLanes += active
		p.cycles += ev.Cost
	case simt.EvBranch:
		if ev.PC < 0 || int(ev.PC) >= len(p.counters) {
			return
		}
		c := &p.counters[ev.PC]
		taken := int64(bits.OnesCount32(ev.Aux))
		c.takenLanes += taken
		c.notTakenLanes += int64(bits.OnesCount32(ev.Mask)) - taken
		if ev.Diverged() {
			c.divergent++
		}
	case simt.EvBarrierWait, simt.EvCTABarWait:
		// ctabar workgroup barriers share the register numbering with
		// convergence barriers, so their wait/stall time lands in the
		// same per-register rows.
		if int(ev.Bar) >= len(p.barriers) {
			return
		}
		w := p.warp(ev.Warp)
		n := int64(0)
		for m := ev.Mask; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			w.since[l] = ev.Cycle
			w.waitPC[l] = ev.PC
			n++
		}
		p.barriers[ev.Bar].waits += n
		if ev.PC >= 0 && int(ev.PC) < len(p.counters) {
			p.counters[ev.PC].waits += n
		}
	case simt.EvBarrierRelease, simt.EvCTABarRelease:
		if int(ev.Bar) >= len(p.barriers) {
			return
		}
		w := p.warp(ev.Warp)
		b := &p.barriers[ev.Bar]
		for m := ev.Mask; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			stall := ev.Cycle - w.since[l]
			b.releases++
			b.blocked += stall
			if pc := w.waitPC[l]; pc >= 0 && int(pc) < len(p.counters) {
				p.counters[pc].barStall += stall
			}
		}
	}
}

// instr returns the static instruction behind dense PC index i.
func (p *Profile) instr(i int) *ir.Instr {
	ref := p.pcs[i]
	return &p.mod.Funcs[ref.Fn].Blocks[ref.Blk].Instrs[ref.Ins]
}

// isBranch reports whether PC i is a conditional branch.
func (p *Profile) isBranch(i int) bool { return p.instr(i).Op == ir.OpCBr }

// SIMTEfficiency returns mean active lanes per profiled issue divided by
// the warp width, in [0,1].
func (p *Profile) SIMTEfficiency() float64 {
	if p.issues == 0 {
		return 0
	}
	return float64(p.activeLanes) / float64(p.issues) / float64(ir.WarpWidth)
}

// BranchEfficiency returns the launch-wide nvprof-style branch
// efficiency: the fraction of conditional-branch issues that did not
// diverge, in [0,1]. Launches with no branches report 1.
func (p *Profile) BranchEfficiency() float64 {
	var issues, divergent int64
	for i := range p.counters {
		if !p.isBranch(i) {
			continue
		}
		issues += p.counters[i].issues
		divergent += p.counters[i].divergent
	}
	if issues == 0 {
		return 1
	}
	return float64(issues-divergent) / float64(issues)
}

// MemStallCycles returns total cycles charged beyond base instruction
// latency (memory transaction time).
func (p *Profile) MemStallCycles() int64 {
	var n int64
	for i := range p.counters {
		n += p.counters[i].memStall
	}
	return n
}

// BarrierStallCycles returns total lane-cycles spent blocked at
// convergence barriers and ctabar workgroup barriers.
func (p *Profile) BarrierStallCycles() int64 {
	var n int64
	for i := range p.barriers {
		n += p.barriers[i].blocked
	}
	return n
}

// Issues returns the number of profiled warp-instruction issues.
func (p *Profile) Issues() int64 { return p.issues }

// Cycles returns the total modeled cycles attributed across PCs.
func (p *Profile) Cycles() int64 { return p.cycles }
