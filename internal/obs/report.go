package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// PCStat is the exported per-instruction profile row. Time is the
// hot-spot ranking metric: cycles attributed to issues at this PC plus
// lane-cycles blocked at it (for wait instructions).
type PCStat struct {
	PC          int    `json:"pc"`
	Fn          string `json:"fn"`
	Block       string `json:"block"`
	Ins         int    `json:"ins"`
	Op          string `json:"op"`
	Issues      int64  `json:"issues"`
	ActiveLanes int64  `json:"active_lanes"`
	Cycles      int64  `json:"cycles"`
	MemStall    int64  `json:"mem_stall"`
	BarStall    int64  `json:"barrier_stall"`
}

// Location renders the row's instruction site as fn.block#ins.
func (s PCStat) Location() string { return fmt.Sprintf("%s.%s#%d", s.Fn, s.Block, s.Ins) }

// Time is the hot-spot ranking metric.
func (s PCStat) Time() int64 { return s.Cycles + s.BarStall }

// AvgLanes is the mean active-lane count per issue at this PC.
func (s PCStat) AvgLanes() float64 {
	if s.Issues == 0 {
		return 0
	}
	return float64(s.ActiveLanes) / float64(s.Issues)
}

// BranchStat is the per-conditional-branch profile row.
type BranchStat struct {
	PC            int    `json:"pc"`
	Fn            string `json:"fn"`
	Block         string `json:"block"`
	Ins           int    `json:"ins"`
	Issues        int64  `json:"issues"`
	Divergent     int64  `json:"divergent"`
	TakenLanes    int64  `json:"taken_lanes"`
	NotTakenLanes int64  `json:"not_taken_lanes"`
}

// Location renders the branch site as fn.block#ins.
func (s BranchStat) Location() string { return fmt.Sprintf("%s.%s#%d", s.Fn, s.Block, s.Ins) }

// Efficiency is the branch's nvprof-style branch efficiency in [0,1]:
// the fraction of its issues that kept the group together.
func (s BranchStat) Efficiency() float64 {
	if s.Issues == 0 {
		return 1
	}
	return float64(s.Issues-s.Divergent) / float64(s.Issues)
}

// BarrierStat is the per-barrier-register profile row.
type BarrierStat struct {
	Barrier       int   `json:"barrier"`
	Waits         int64 `json:"waits"`
	Releases      int64 `json:"releases"`
	BlockedCycles int64 `json:"blocked_cycles"`
}

// Summary is the launch-wide headline view of a profile.
type Summary struct {
	Issues           int64   `json:"issues"`
	Cycles           int64   `json:"cycles"`
	SIMTEfficiency   float64 `json:"simt_efficiency"`
	BranchEfficiency float64 `json:"branch_efficiency"`
	MemStallCycles   int64   `json:"mem_stall_cycles"`
	BarStallCycles   int64   `json:"barrier_stall_cycles"`
}

// Summary returns the profile's launch-wide headline counters.
func (p *Profile) Summary() Summary {
	return Summary{
		Issues:           p.issues,
		Cycles:           p.cycles,
		SIMTEfficiency:   p.SIMTEfficiency(),
		BranchEfficiency: p.BranchEfficiency(),
		MemStallCycles:   p.MemStallCycles(),
		BarStallCycles:   p.BarrierStallCycles(),
	}
}

// stat materializes PC i's exported row.
func (p *Profile) stat(i int) PCStat {
	ref := p.pcs[i]
	c := &p.counters[i]
	return PCStat{
		PC:          i,
		Fn:          p.mod.Funcs[ref.Fn].Name,
		Block:       p.mod.Funcs[ref.Fn].Blocks[ref.Blk].Name,
		Ins:         int(ref.Ins),
		Op:          p.instr(i).Op.String(),
		Issues:      c.issues,
		ActiveLanes: c.activeLanes,
		Cycles:      c.cycles,
		MemStall:    c.memStall,
		BarStall:    c.barStall,
	}
}

// Top returns the n hottest static instructions by attributed time
// (issue cycles plus barrier-blocked lane-cycles), hottest first. Ties
// break by PC so the order is deterministic. PCs that never issued are
// skipped.
func (p *Profile) Top(n int) []PCStat {
	out := make([]PCStat, 0, 32)
	for i := range p.counters {
		if p.counters[i].issues == 0 && p.counters[i].barStall == 0 {
			continue
		}
		out = append(out, p.stat(i))
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Time() != out[b].Time() {
			return out[a].Time() > out[b].Time()
		}
		return out[a].PC < out[b].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Branches returns every executed conditional branch, most divergent
// issues first (ties by PC).
func (p *Profile) Branches() []BranchStat {
	var out []BranchStat
	for i := range p.counters {
		c := &p.counters[i]
		if !p.isBranch(i) || c.issues == 0 {
			continue
		}
		ref := p.pcs[i]
		out = append(out, BranchStat{
			PC:            i,
			Fn:            p.mod.Funcs[ref.Fn].Name,
			Block:         p.mod.Funcs[ref.Fn].Blocks[ref.Blk].Name,
			Ins:           int(ref.Ins),
			Issues:        c.issues,
			Divergent:     c.divergent,
			TakenLanes:    c.takenLanes,
			NotTakenLanes: c.notTakenLanes,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Divergent != out[b].Divergent {
			return out[a].Divergent > out[b].Divergent
		}
		return out[a].PC < out[b].PC
	})
	return out
}

// Barriers returns every barrier register that saw a wait, in register
// order.
func (p *Profile) Barriers() []BarrierStat {
	var out []BarrierStat
	for b := range p.barriers {
		c := &p.barriers[b]
		if c.waits == 0 {
			continue
		}
		out = append(out, BarrierStat{
			Barrier:       b,
			Waits:         c.waits,
			Releases:      c.releases,
			BlockedCycles: c.blocked,
		})
	}
	return out
}

// WriteMarkdown renders the profile as markdown tables: summary, the n
// hottest instructions, every branch and every barrier.
func (p *Profile) WriteMarkdown(w io.Writer, n int) error {
	s := p.Summary()
	if _, err := fmt.Fprintf(w,
		"| issues | cycles | simt eff | branch eff | mem stall | barrier stall |\n"+
			"|-------:|-------:|---------:|-----------:|----------:|--------------:|\n"+
			"| %d | %d | %.1f%% | %.1f%% | %d | %d |\n\n",
		s.Issues, s.Cycles, 100*s.SIMTEfficiency, 100*s.BranchEfficiency,
		s.MemStallCycles, s.BarStallCycles); err != nil {
		return err
	}

	fmt.Fprintf(w, "hot spots (top %d by attributed cycles):\n\n", n)
	fmt.Fprintln(w, "| location | op | issues | avg lanes | cycles | mem stall | barrier stall |")
	fmt.Fprintln(w, "|----------|----|-------:|----------:|-------:|----------:|--------------:|")
	for _, r := range p.Top(n) {
		fmt.Fprintf(w, "| %s | %s | %d | %.1f | %d | %d | %d |\n",
			r.Location(), r.Op, r.Issues, r.AvgLanes(), r.Cycles, r.MemStall, r.BarStall)
	}
	fmt.Fprintln(w)

	if br := p.Branches(); len(br) > 0 {
		fmt.Fprintln(w, "branches:")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "| location | issues | divergent | taken lanes | not-taken lanes | branch eff |")
		fmt.Fprintln(w, "|----------|-------:|----------:|------------:|----------------:|-----------:|")
		for _, b := range br {
			fmt.Fprintf(w, "| %s | %d | %d | %d | %d | %.1f%% |\n",
				b.Location(), b.Issues, b.Divergent, b.TakenLanes, b.NotTakenLanes, 100*b.Efficiency())
		}
		fmt.Fprintln(w)
	}

	if bars := p.Barriers(); len(bars) > 0 {
		fmt.Fprintln(w, "barriers:")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "| barrier | waits | releases | blocked cycles |")
		fmt.Fprintln(w, "|--------:|------:|---------:|---------------:|")
		for _, b := range bars {
			fmt.Fprintf(w, "| b%d | %d | %d | %d |\n", b.Barrier, b.Waits, b.Releases, b.BlockedCycles)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// profileJSON is the machine-readable dump schema.
type profileJSON struct {
	Summary  Summary       `json:"summary"`
	PCs      []PCStat      `json:"pcs"`
	Branches []BranchStat  `json:"branches"`
	Barriers []BarrierStat `json:"barriers"`
}

// WriteJSON writes the machine-readable profile dump: the summary, every
// executed PC (hottest first), every branch and every barrier.
func (p *Profile) WriteJSON(w io.Writer) error {
	dump := profileJSON{
		Summary:  p.Summary(),
		PCs:      p.Top(0),
		Branches: p.Branches(),
		Barriers: p.Barriers(),
	}
	if dump.PCs == nil {
		dump.PCs = []PCStat{}
	}
	if dump.Branches == nil {
		dump.Branches = []BranchStat{}
	}
	if dump.Barriers == nil {
		dump.Barriers = []BarrierStat{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
