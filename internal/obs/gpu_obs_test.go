package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"specrecon/internal/ir"
	"specrecon/internal/obs"
	"specrecon/internal/simt"
)

// gridKernel is a small multi-CTA workload with shared memory and a
// workgroup barrier, shaped so several SMs carry real work.
const gridKernel = `module g memwords=64 sharedwords=64
func @k nregs=8 nfregs=0 {
entry:
  ctatid r0
  tid r1
  sts [r0], r1
  ctabar b0
  setlt r2, r0, #1
  cbr r2, lead, done
lead:
  lds r3, [r0+1]
  ctaid r4
  st [r4], r3
  br done
done:
  exit
}
`

// TestProfileMergePerSM pins the profiler's sharding contract: per-SM
// profiles attached through Config.SMEvents, merged in SM order, render
// byte-identically to one profile fed the replayed launch-wide stream.
func TestProfileMergePerSM(t *testing.T) {
	m := asm(t, gridKernel)
	// Two warps per CTA so the workgroup barrier actually makes the
	// first warp wait (and nonzero stall time is attributed).
	cfg := simt.Config{Grid: 4, CTASize: 2 * ir.WarpWidth, SMs: 2, Seed: 5}

	// One NewProfile derives the PC table; the per-SM sinks fork it.
	proto := obs.NewProfile(m)
	perSM := make([]*obs.Profile, cfg.SMs)
	cfgSharded := cfg
	cfgSharded.Workers = 2
	cfgSharded.SMEvents = func(sm int) simt.EventSink {
		perSM[sm] = proto.Fork()
		return perSM[sm]
	}
	if _, err := simt.Run(m, cfgSharded); err != nil {
		t.Fatalf("sharded Run: %v", err)
	}
	merged := proto.Fork()
	for _, p := range perSM {
		merged.Merge(p)
	}

	single := obs.NewProfile(m)
	cfgSerial := cfg
	cfgSerial.Events = single
	if _, err := simt.Run(m, cfgSerial); err != nil {
		t.Fatalf("serial Run: %v", err)
	}

	render := func(p *obs.Profile) []byte {
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	got, want := render(merged), render(single)
	if !bytes.Equal(got, want) {
		t.Errorf("merged per-SM profile differs from single-sink profile\nmerged:\n%s\nsingle:\n%s", got, want)
	}
	if merged.BarrierStallCycles() == 0 {
		t.Error("BarrierStallCycles = 0, want ctabar stalls attributed")
	}
}

// TestTraceMultiSM checks the grid-trace shape: one named process per
// SM, every event's pid within range, ctabar spans present, and each
// warp's tracks confined to a single SM.
func TestTraceMultiSM(t *testing.T) {
	m := asm(t, gridKernel)
	rec := obs.NewTraceRecorder()
	cfg := simt.Config{Grid: 4, CTASize: ir.WarpWidth, SMs: 2, Seed: 5, Events: rec}
	if _, err := simt.Run(m, cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	procs := map[int]string{}
	tidPid := map[int]int{}
	sawCTABar := false
	for _, ev := range tf.TraceEvents {
		if ev.Pid < 0 || ev.Pid >= cfg.SMs {
			t.Fatalf("event %q has pid %d outside [0,%d)", ev.Name, ev.Pid, cfg.SMs)
		}
		if ev.Name == "process_name" {
			procs[ev.Pid], _ = ev.Args["name"].(string)
			continue
		}
		if ev.Ph == "M" {
			continue
		}
		if prev, ok := tidPid[ev.Tid]; ok && prev != ev.Pid {
			t.Fatalf("tid %d appears under pid %d and pid %d", ev.Tid, prev, ev.Pid)
		}
		tidPid[ev.Tid] = ev.Pid
		if ev.Name == "ctabar b0" {
			sawCTABar = true
		}
	}
	if procs[0] != "sm 0" || procs[1] != "sm 1" {
		t.Errorf("process names = %v, want sm 0 / sm 1", procs)
	}
	if !sawCTABar {
		t.Error("no ctabar span in the trace")
	}
}

// TestProfileForkResetMerge pins the sink-reuse cycle satellite: forked
// per-SM profiles that already absorbed one launch, Reset and reattached
// for a second launch, then merged, must reconstruct exactly the
// profile a fresh NewProfile builds over that launch — no counter may
// leak across the Reset, and merging must not double-count.
func TestProfileForkResetMerge(t *testing.T) {
	m := asm(t, gridKernel)
	cfg := simt.Config{Grid: 4, CTASize: 2 * ir.WarpWidth, SMs: 2, Seed: 5}

	proto := obs.NewProfile(m)
	perSM := make([]*obs.Profile, cfg.SMs)
	shard := func() {
		run := cfg
		run.SMEvents = func(sm int) simt.EventSink {
			if perSM[sm] == nil {
				perSM[sm] = proto.Fork()
			}
			return perSM[sm]
		}
		if _, err := simt.Run(m, run); err != nil {
			t.Fatalf("sharded Run: %v", err)
		}
	}

	// First launch dirties the forks; Reset must clear every counter.
	shard()
	for _, p := range perSM {
		p.Reset()
		if p.Issues() != 0 || p.Cycles() != 0 {
			t.Fatalf("Reset left issues=%d cycles=%d", p.Issues(), p.Cycles())
		}
	}

	// Second launch into the recycled forks, merged into a recycled
	// parent.
	shard()
	merged := proto.Fork()
	for _, p := range perSM {
		merged.Merge(p)
	}

	fresh := obs.NewProfile(m)
	run := cfg
	run.Events = fresh
	if _, err := simt.Run(m, run); err != nil {
		t.Fatalf("serial Run: %v", err)
	}

	render := func(p *obs.Profile) []byte {
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if got, want := render(merged), render(fresh); !bytes.Equal(got, want) {
		t.Errorf("merge after reset differs from fresh profile\nmerged:\n%s\nfresh:\n%s", got, want)
	}
}
