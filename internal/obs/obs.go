// Package obs is the observability layer of the simulator: an
// nvprof-style profiler and a Perfetto trace exporter, both fed by the
// generalized event stream of internal/simt (simt.Config.Events).
//
// The paper's evaluation is read off nvprof hardware counters — branch
// efficiency, warp execution efficiency, stall reasons — and DARM-style
// follow-ups motivate their transforms with per-branch divergence and
// per-region stall attribution. This package provides the same lens for
// the reproduction:
//
//   - Profile attributes issues, active lanes, attributed cycles and
//     stall cycles (memory and barrier, separately) to every static
//     instruction; taken/not-taken lane counts and a branch-efficiency
//     figure to every conditional branch; and wait events plus total
//     blocked cycles to every barrier register. Its hot path is a few
//     array increments into tables indexed by the decode-time dense PC
//     id, so a profiled run stays allocation-free per issue (the
//     steady-state allocation guard in internal/simt pins this).
//
//   - TraceRecorder buffers the stream and WriteTrace renders it as
//     Chrome trace-event JSON — per-warp tracks with block-residency
//     spans, per-barrier wait spans and divergence instants — which
//     opens directly in ui.perfetto.dev.
//
// Attach either (or both, via simt.TeeSinks) to a launch:
//
//	p := obs.NewProfile(mod)
//	rec := obs.NewTraceRecorder()
//	res, err := simt.Run(mod, simt.Config{Events: simt.TeeSinks(p, rec)})
package obs
