package obs

import (
	"fmt"
	"io"

	"specrecon/internal/simt"
)

// Occupancy observers over the simulator's per-SM occupancy/stall
// sampler (simt.Sample). Two sinks with different cost contracts:
//
//   - OccupancyStats is a fixed-size aggregate whose Sample method only
//     adds into its fields — attach one per SM via simt.Config.SMSamples
//     and the 0-allocs/issue property holds with sampling enabled (the
//     sampler cases of TestSteadyStateIssueAllocFree* pin this).
//   - OccupancyRecorder buffers every sample for timelines and the
//     Perfetto counter tracks; like TraceRecorder it allocates as the
//     buffer grows, so use it for runs you intend to look at.

// OccupancyStats aggregates samples into per-window sums. The zero
// value is ready to use. It implements simt.SampleSink.
type OccupancyStats struct {
	// Samples is the number of samples aggregated.
	Samples int64
	// ResidentSum / EligibleSum / IssuedSum accumulate the respective
	// warp counts over samples.
	ResidentSum int64
	EligibleSum int64
	IssuedSum   int64
	// StallBarrierSum / StallCTABarSum accumulate warps stalled at
	// convergence barriers (and warpsync) / ctabar workgroup barriers.
	StallBarrierSum int64
	StallCTABarSum  int64
	// NoEligible counts samples whose window had resident warps but
	// none eligible — the SM had nothing to issue.
	NoEligible int64
	// MemStallCycles totals cycles charged beyond base latency.
	MemStallCycles int64
	// LastCycle is the latest sample's cycle seen.
	LastCycle int64
}

// Sample implements simt.SampleSink with fixed-field additions only (no
// allocation, ever).
func (o *OccupancyStats) Sample(s simt.Sample) {
	o.Samples++
	o.ResidentSum += int64(s.Resident)
	o.EligibleSum += int64(s.Eligible)
	o.IssuedSum += int64(s.Issued)
	o.StallBarrierSum += int64(s.StallBarrier)
	o.StallCTABarSum += int64(s.StallCTABar)
	if s.Resident > 0 && s.Eligible == 0 {
		o.NoEligible++
	}
	o.MemStallCycles += s.MemStallCycles
	if s.Cycle > o.LastCycle {
		o.LastCycle = s.Cycle
	}
}

// Merge adds p's sums into o.
func (o *OccupancyStats) Merge(p *OccupancyStats) {
	o.Samples += p.Samples
	o.ResidentSum += p.ResidentSum
	o.EligibleSum += p.EligibleSum
	o.IssuedSum += p.IssuedSum
	o.StallBarrierSum += p.StallBarrierSum
	o.StallCTABarSum += p.StallCTABarSum
	o.NoEligible += p.NoEligible
	o.MemStallCycles += p.MemStallCycles
	if p.LastCycle > o.LastCycle {
		o.LastCycle = p.LastCycle
	}
}

// Reset zeroes the aggregate in place for reuse across launches.
func (o *OccupancyStats) Reset() { *o = OccupancyStats{} }

func (o *OccupancyStats) avg(sum int64) float64 {
	if o.Samples == 0 {
		return 0
	}
	return float64(sum) / float64(o.Samples)
}

// AvgResident returns mean resident warps per sample.
func (o *OccupancyStats) AvgResident() float64 { return o.avg(o.ResidentSum) }

// AvgEligible returns mean eligible warps per sample.
func (o *OccupancyStats) AvgEligible() float64 { return o.avg(o.EligibleSum) }

// AvgIssued returns mean issuing warps per sample.
func (o *OccupancyStats) AvgIssued() float64 { return o.avg(o.IssuedSum) }

// stallFrac returns sum as a fraction of resident warp-samples.
func (o *OccupancyStats) stallFrac(sum int64) float64 {
	if o.ResidentSum == 0 {
		return 0
	}
	return float64(sum) / float64(o.ResidentSum)
}

// StallBarrierFrac returns the fraction of resident warp-samples
// stalled at convergence barriers or warpsync.
func (o *OccupancyStats) StallBarrierFrac() float64 { return o.stallFrac(o.StallBarrierSum) }

// StallCTABarFrac returns the fraction of resident warp-samples stalled
// at ctabar workgroup barriers.
func (o *OccupancyStats) StallCTABarFrac() float64 { return o.stallFrac(o.StallCTABarSum) }

// NoEligibleFrac returns the fraction of samples with resident warps
// but nothing eligible to issue.
func (o *OccupancyStats) NoEligibleFrac() float64 {
	if o.Samples == 0 {
		return 0
	}
	return float64(o.NoEligible) / float64(o.Samples)
}

// IssueEfficiency returns issued warps as a fraction of resident warps
// over the aggregated windows, in [0,1] — the sampler's analogue of SM
// issue-slot utilization.
func (o *OccupancyStats) IssueEfficiency() float64 { return o.stallFrac(o.IssuedSum) }

// OccupancyRecorder buffers every sample (implements simt.SampleSink;
// attach via simt.Config.Samples for deterministic SM-ordered replay).
type OccupancyRecorder struct {
	samples []simt.Sample
}

// NewOccupancyRecorder returns an empty recorder.
func NewOccupancyRecorder() *OccupancyRecorder { return &OccupancyRecorder{} }

// Sample implements simt.SampleSink.
func (r *OccupancyRecorder) Sample(s simt.Sample) { r.samples = append(r.samples, s) }

// Len returns the number of recorded samples.
func (r *OccupancyRecorder) Len() int { return len(r.samples) }

// Samples returns the recorded samples (aliasing the buffer).
func (r *OccupancyRecorder) Samples() []simt.Sample { return r.samples }

// Reset empties the recorder, keeping the buffer.
func (r *OccupancyRecorder) Reset() { r.samples = r.samples[:0] }

// Stats aggregates every recorded sample.
func (r *OccupancyRecorder) Stats() OccupancyStats {
	var o OccupancyStats
	for _, s := range r.samples {
		o.Sample(s)
	}
	return o
}

// PerSM aggregates the samples per SM, indexed by SM (length = max SM
// index + 1; nil when nothing was recorded).
func (r *OccupancyRecorder) PerSM() []OccupancyStats {
	if len(r.samples) == 0 {
		return nil
	}
	max := int32(0)
	for _, s := range r.samples {
		if s.SM > max {
			max = s.SM
		}
	}
	out := make([]OccupancyStats, max+1)
	for _, s := range r.samples {
		out[s.SM].Sample(s)
	}
	return out
}

// timelineBuckets is the column count of the WriteMarkdown sparkline.
const timelineBuckets = 48

// WriteMarkdown renders the occupancy timeline section: one summary row
// per SM, then a per-SM issue-activity strip over time where each
// column is a cycle bucket and its digit is round(9 × issued/resident)
// — 9 means every resident warp issued throughout the bucket, 0 means
// the SM sat stalled.
func (r *OccupancyRecorder) WriteMarkdown(w io.Writer) error {
	per := r.PerSM()
	if per == nil {
		_, err := fmt.Fprintf(w, "no occupancy samples recorded (set a sample stride on a grid or interleaved launch)\n")
		return err
	}
	fmt.Fprintf(w, "| sm | samples | avg resident | avg eligible | avg issued | issue eff | barrier stall | ctabar stall | no-eligible | mem-stall cycles |\n")
	fmt.Fprintf(w, "|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for sm := range per {
		o := &per[sm]
		if o.Samples == 0 {
			continue
		}
		fmt.Fprintf(w, "| %d | %d | %.1f | %.1f | %.1f | %.0f%% | %.1f%% | %.1f%% | %.1f%% | %d |\n",
			sm, o.Samples, o.AvgResident(), o.AvgEligible(), o.AvgIssued(),
			100*o.IssueEfficiency(), 100*o.StallBarrierFrac(), 100*o.StallCTABarFrac(),
			100*o.NoEligibleFrac(), o.MemStallCycles)
	}

	endCycle := int64(0)
	for _, s := range r.samples {
		if s.Cycle > endCycle {
			endCycle = s.Cycle
		}
	}
	if endCycle == 0 {
		return nil
	}
	fmt.Fprintf(w, "\nIssue activity over time (columns = cycle buckets of %d cycles; digit = issued/resident, 0–9):\n\n```\n",
		(endCycle+timelineBuckets-1)/timelineBuckets)
	var issued, resident [timelineBuckets]int64
	for sm := range per {
		if per[sm].Samples == 0 {
			continue
		}
		issued, resident = [timelineBuckets]int64{}, [timelineBuckets]int64{}
		for _, s := range r.samples {
			if int(s.SM) != sm {
				continue
			}
			b := int((s.Cycle - 1) * timelineBuckets / endCycle)
			if b < 0 {
				b = 0
			}
			if b >= timelineBuckets {
				b = timelineBuckets - 1
			}
			issued[b] += int64(s.Issued)
			resident[b] += int64(s.Resident)
		}
		fmt.Fprintf(w, "sm %2d |", sm)
		for b := 0; b < timelineBuckets; b++ {
			switch {
			case resident[b] == 0:
				fmt.Fprint(w, ".")
			default:
				d := (9*issued[b] + resident[b]/2) / resident[b]
				if d > 9 {
					d = 9
				}
				fmt.Fprintf(w, "%d", d)
			}
		}
		fmt.Fprintf(w, "|\n")
	}
	_, err := fmt.Fprintf(w, "```\n")
	return err
}
