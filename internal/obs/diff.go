package obs

import (
	"fmt"
	"io"
	"sort"
)

// Before/after-transform profile diffing. The speculative-reconvergence
// passes insert and clone instructions, so dense PC indices do not line
// up between a baseline and an optimized build; blocks, however, keep
// their names (passes insert into existing blocks, and minted blocks are
// new on one side only). The diff therefore aggregates both profiles to
// (function, block) granularity and matches rows by name.

// BlockDelta compares one (function, block) between two profiles. A side
// that lacks the block entirely reports zeros for it.
type BlockDelta struct {
	Fn, Block          string
	BaseCycles, Cycles int64   // attributed cycles incl. barrier stall
	BaseLanes, Lanes   float64 // mean active lanes per issue
	BaseStall, Stall   int64   // mem + barrier stall
	BaseIssues, Issues int64
}

// Delta is the attributed-cycle change (after minus before): negative
// means the transform made the block cheaper.
func (d BlockDelta) Delta() int64 { return d.Cycles - d.BaseCycles }

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

type blockAgg struct {
	issues, lanes, cycles, stall int64
}

// aggregate folds a profile's PC rows into (fn, block) rows.
func aggregate(p *Profile) map[[2]string]blockAgg {
	out := make(map[[2]string]blockAgg)
	for i := range p.counters {
		c := &p.counters[i]
		if c.issues == 0 && c.barStall == 0 {
			continue
		}
		ref := p.pcs[i]
		key := [2]string{p.mod.Funcs[ref.Fn].Name, p.mod.Funcs[ref.Fn].Blocks[ref.Blk].Name}
		a := out[key]
		a.issues += c.issues
		a.lanes += c.activeLanes
		a.cycles += c.cycles + c.barStall
		a.stall += c.memStall + c.barStall
		out[key] = a
	}
	return out
}

// Diff compares two profiles of the same workload (typically baseline
// versus the transformed build) at block granularity, largest absolute
// attributed-cycle change first.
func Diff(base, after *Profile) []BlockDelta {
	ba := aggregate(base)
	aa := aggregate(after)
	keys := make(map[[2]string]bool, len(ba)+len(aa))
	for k := range ba {
		keys[k] = true
	}
	for k := range aa {
		keys[k] = true
	}
	out := make([]BlockDelta, 0, len(keys))
	for k := range keys {
		b, a := ba[k], aa[k]
		d := BlockDelta{
			Fn: k[0], Block: k[1],
			BaseCycles: b.cycles, Cycles: a.cycles,
			BaseStall: b.stall, Stall: a.stall,
			BaseIssues: b.issues, Issues: a.issues,
		}
		if b.issues > 0 {
			d.BaseLanes = float64(b.lanes) / float64(b.issues)
		}
		if a.issues > 0 {
			d.Lanes = float64(a.lanes) / float64(a.issues)
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := abs64(out[i].Delta()), abs64(out[j].Delta())
		if di != dj {
			return di > dj
		}
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// WriteDiffMarkdown renders the n largest block-level movers between two
// profiles as a markdown table.
func WriteDiffMarkdown(w io.Writer, base, after *Profile, n int) error {
	deltas := Diff(base, after)
	if n > 0 && len(deltas) > n {
		deltas = deltas[:n]
	}
	if _, err := fmt.Fprintln(w, "| block | base cycles | spec cycles | Δcycles | base lanes | spec lanes |"); err != nil {
		return err
	}
	fmt.Fprintln(w, "|-------|------------:|------------:|--------:|-----------:|-----------:|")
	for _, d := range deltas {
		fmt.Fprintf(w, "| %s.%s | %d | %d | %+d | %.1f | %.1f |\n",
			d.Fn, d.Block, d.BaseCycles, d.Cycles, d.Delta(), d.BaseLanes, d.Lanes)
	}
	fmt.Fprintln(w)
	return nil
}
