package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"specrecon/internal/ir"
	"specrecon/internal/obs"
	"specrecon/internal/simt"
)

// sampleGrid runs gridKernel with the occupancy recorder attached and
// returns the recorder.
func sampleGrid(t *testing.T, stride int64) *obs.OccupancyRecorder {
	t.Helper()
	m := asm(t, gridKernel)
	rec := obs.NewOccupancyRecorder()
	cfg := simt.Config{
		Grid: 8, CTASize: 2 * ir.WarpWidth, SMs: 4, Workers: 2, Seed: 5,
		SampleStride: stride, Samples: rec,
	}
	if _, err := simt.Run(m, cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rec
}

// TestOccupancyStatsAggregation checks the fixed-field aggregate
// against a hand-computed fold of the same sample stream, plus the
// derived ratios' ranges.
func TestOccupancyStatsAggregation(t *testing.T) {
	rec := sampleGrid(t, 8)
	samples := rec.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	var want obs.OccupancyStats
	for _, s := range samples {
		want.Sample(s)
	}
	got := rec.Stats()
	if got != want {
		t.Fatalf("Stats() = %+v, want %+v", got, want)
	}
	if got.Samples != int64(len(samples)) {
		t.Errorf("Samples = %d, want %d", got.Samples, len(samples))
	}
	if eff := got.IssueEfficiency(); eff <= 0 || eff > 1 {
		t.Errorf("IssueEfficiency = %v, want (0,1]", eff)
	}
	if got.AvgResident() < got.AvgEligible() {
		t.Errorf("avg resident %v < avg eligible %v", got.AvgResident(), got.AvgEligible())
	}

	// Merge of per-SM aggregates reproduces the whole-stream aggregate.
	var merged obs.OccupancyStats
	for _, per := range rec.PerSM() {
		p := per
		merged.Merge(&p)
	}
	if merged != want {
		t.Errorf("merged per-SM stats = %+v, want %+v", merged, want)
	}

	// Reset returns the zero aggregate.
	got.Reset()
	if got != (obs.OccupancyStats{}) {
		t.Errorf("Reset left %+v", got)
	}
}

// TestOccupancyPerSM: samples land in their own SM's bucket and every
// SM with work contributes.
func TestOccupancyPerSM(t *testing.T) {
	rec := sampleGrid(t, 8)
	per := rec.PerSM()
	if len(per) != 4 {
		t.Fatalf("PerSM length = %d, want 4", len(per))
	}
	var total int64
	for sm, o := range per {
		if o.Samples == 0 {
			t.Errorf("sm %d aggregated no samples", sm)
		}
		total += o.Samples
	}
	if total != int64(rec.Len()) {
		t.Errorf("per-SM sample total %d != recorded %d", total, rec.Len())
	}
}

// TestOccupancyMarkdown renders the timeline section and checks the
// table header, one row and one strip per SM, and the empty-recorder
// fallback.
func TestOccupancyMarkdown(t *testing.T) {
	rec := sampleGrid(t, 8)
	var buf bytes.Buffer
	if err := rec.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| sm | samples | avg resident |") {
		t.Errorf("missing summary header:\n%s", out)
	}
	for _, want := range []string{"| 0 |", "| 3 |", "sm  0 |", "sm  3 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in occupancy markdown:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "Issue activity over time") {
		t.Errorf("missing timeline strip:\n%s", out)
	}

	buf.Reset()
	if err := obs.NewOccupancyRecorder().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no occupancy samples") {
		t.Errorf("empty recorder fallback missing: %q", buf.String())
	}
}

// TestTraceOccupancyCounters: samples fed to the trace recorder render
// as per-SM Perfetto counter tracks, and a recorder without samples
// emits none (pinning the flat goldens).
func TestTraceOccupancyCounters(t *testing.T) {
	m := asm(t, gridKernel)
	rec := obs.NewTraceRecorder()
	cfg := simt.Config{
		Grid: 8, CTASize: 2 * ir.WarpWidth, SMs: 2, Seed: 5,
		SampleStride: 8, Events: rec,
		Samples: simt.SampleSinkFunc(rec.Sample),
	}
	if _, err := simt.Run(m, cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		Events []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Args json.RawMessage `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	occ, mem := map[int]int{}, map[int]int{}
	for _, ev := range trace.Events {
		if ev.Ph != "C" {
			continue
		}
		switch ev.Name {
		case "sm occupancy":
			occ[ev.Pid]++
			var args map[string]int64
			if err := json.Unmarshal(ev.Args, &args); err != nil {
				t.Fatalf("counter args: %v", err)
			}
			for _, k := range []string{"issued", "eligible idle", "stall barrier", "stall ctabar", "stall other"} {
				if v, ok := args[k]; !ok {
					t.Fatalf("counter missing series %q: %s", k, ev.Args)
				} else if v < 0 {
					t.Fatalf("negative counter %q = %d", k, v)
				}
			}
		case "sm mem stall":
			mem[ev.Pid]++
		}
	}
	for sm := 0; sm < 2; sm++ {
		if occ[sm] == 0 || mem[sm] == 0 {
			t.Errorf("sm %d: occupancy counters %d, mem-stall counters %d; want both > 0",
				sm, occ[sm], mem[sm])
		}
	}

	// Without samples the exporter emits no counter events at all.
	plain := recordTrace(t)
	if bytes.Contains(plain, []byte(`"ph":"C"`)) {
		t.Error("sample-free trace contains counter events")
	}
}
