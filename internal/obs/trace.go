package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"specrecon/internal/ir"
	"specrecon/internal/simt"
)

// Chrome trace-event / Perfetto export. WriteTrace renders a recorded
// event stream in the Trace Event Format (the JSON flavor Perfetto's
// ui.perfetto.dev opens directly): one process (track group) per SM,
// and per warp one execution track carrying block-residency spans plus
// divergence instants, and one track per (warp, barrier register)
// carrying barrier-wait spans (convergence barriers and ctabar
// workgroup barriers alike). Timestamps are modeled cycles reported as
// microseconds — the absolute unit is meaningless for a simulator, only
// the ratios matter. A flat launch reports every event on SM 0, so its
// trace keeps the single "simt" process of the pre-hierarchy exporter.

// trackStride spaces the synthetic thread ids of one warp's tracks: tid
// warp*trackStride is the execution track, warp*trackStride+1+b the
// track of barrier register b.
const trackStride = ir.NumBarrierRegs + 1

// traceEvent is one Trace Event Format record.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level Trace Event Format JSON object.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// TraceRecorder buffers the simulator event stream for later export. It
// implements simt.EventSink; attach it via simt.Config.Events (combine
// with a Profile using simt.TeeSinks). Recording buffers every event, so
// it allocates as the buffer grows — use it for runs you intend to look
// at, not inside benchmark loops.
type TraceRecorder struct {
	events  []simt.Event
	samples []simt.Sample
}

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{}
}

// Event implements simt.EventSink.
func (r *TraceRecorder) Event(ev simt.Event) {
	r.events = append(r.events, ev)
}

// Sample implements simt.SampleSink: occupancy samples recorded here
// render as per-SM counter tracks ("sm occupancy", "sm mem stall") in
// WriteTrace. Attach via simt.Config.Samples alongside Events; a trace
// with no samples is byte-identical to the pre-sampler exporter.
func (r *TraceRecorder) Sample(s simt.Sample) {
	r.samples = append(r.samples, s)
}

// Len returns the number of recorded events.
func (r *TraceRecorder) Len() int { return len(r.events) }

// execSpan tracks the open block-residency span of one warp.
type execSpan struct {
	fn, blk int32
	open    bool
}

// WriteTrace renders the recorded stream as Chrome trace-event JSON.
func (r *TraceRecorder) WriteTrace(w io.Writer) error {
	var out []traceEvent

	// Track bookkeeping: open block spans per warp, open barrier-wait
	// spans per (warp, barrier), and which tracks exist (for metadata).
	// Warp indices are launch-wide unique, so per-warp maps need no SM
	// qualifier; warpSM/maxSM remember each warp's home SM for the pid
	// field and the per-SM process metadata.
	execOpen := map[int32]*execSpan{}
	barOpen := map[[2]int32]bool{}
	seenExec := map[int32]bool{}
	seenBar := map[[2]int32]bool{}
	warpSM := map[int32]int32{}
	var maxSM int32
	var endCycle int64

	execTid := func(warp int32) int { return int(warp) * trackStride }
	barTid := func(warp int32, bar int16) int { return int(warp)*trackStride + 1 + int(bar) }

	for _, ev := range r.events {
		if c := ev.Cycle + ev.Cost; c > endCycle {
			endCycle = c
		}
		warpSM[ev.Warp] = ev.SM
		if ev.SM > maxSM {
			maxSM = ev.SM
		}
		pid := int(ev.SM)
		switch ev.Kind {
		case simt.EvIssue:
			seenExec[ev.Warp] = true
			sp := execOpen[ev.Warp]
			if sp == nil {
				sp = &execSpan{}
				execOpen[ev.Warp] = sp
			}
			if sp.open && (sp.fn != ev.Fn || sp.blk != ev.Blk) {
				out = append(out, traceEvent{
					Name: "block", Ph: "E", Ts: ev.Cycle, Pid: pid, Tid: execTid(ev.Warp),
				})
				sp.open = false
			}
			if !sp.open {
				out = append(out, traceEvent{
					Name: fmt.Sprintf("%s.%s", ev.FnName, ev.BlockName),
					Ph:   "B", Ts: ev.Cycle, Pid: pid, Tid: execTid(ev.Warp),
					Args: map[string]any{"mask": fmt.Sprintf("%08x", ev.Mask)},
				})
				sp.fn, sp.blk, sp.open = ev.Fn, ev.Blk, true
			}
		case simt.EvBranch:
			if !ev.Diverged() {
				continue
			}
			out = append(out, traceEvent{
				Name: fmt.Sprintf("diverge %s.%s", ev.FnName, ev.BlockName),
				Ph:   "i", Ts: ev.Cycle, Pid: pid, Tid: execTid(ev.Warp), S: "t",
				Args: map[string]any{
					"mask":  fmt.Sprintf("%08x", ev.Mask),
					"taken": fmt.Sprintf("%08x", ev.Aux),
				},
			})
		case simt.EvBarrierWait, simt.EvCTABarWait:
			key := [2]int32{ev.Warp, int32(ev.Bar)}
			seenBar[key] = true
			if barOpen[key] {
				continue // more lanes joined an already-open wait span
			}
			barOpen[key] = true
			name := fmt.Sprintf("wait b%d", ev.Bar)
			if ev.Kind == simt.EvCTABarWait {
				name = fmt.Sprintf("ctabar b%d", ev.Bar)
			}
			out = append(out, traceEvent{
				Name: name,
				Ph:   "B", Ts: ev.Cycle, Pid: pid, Tid: barTid(ev.Warp, ev.Bar),
				Args: map[string]any{
					"at":   fmt.Sprintf("%s.%s#%d", ev.FnName, ev.BlockName, ev.Ins),
					"mask": fmt.Sprintf("%08x", ev.Mask),
				},
			})
		case simt.EvBarrierRelease, simt.EvCTABarRelease:
			key := [2]int32{ev.Warp, int32(ev.Bar)}
			if !barOpen[key] {
				continue
			}
			barOpen[key] = false
			name := fmt.Sprintf("wait b%d", ev.Bar)
			if ev.Kind == simt.EvCTABarRelease {
				name = fmt.Sprintf("ctabar b%d", ev.Bar)
			}
			out = append(out, traceEvent{
				Name: name,
				Ph:   "E", Ts: ev.Cycle, Pid: pid, Tid: barTid(ev.Warp, ev.Bar),
				Args: map[string]any{"released": fmt.Sprintf("%08x", ev.Mask)},
			})
		}
	}

	// Per-SM utilization counter tracks, one point per occupancy sample.
	// Stacked "sm occupancy" areas decompose the resident warps into
	// issuing / eligible-but-not-issued / stalled-by-reason; "sm mem
	// stall" carries the window's memory-transaction cycles. Samples
	// arrive SM-ordered (the simulator replays its per-SM buffers), so
	// the output stays deterministic.
	for _, s := range r.samples {
		if s.SM > maxSM {
			maxSM = s.SM
		}
		if s.Cycle > endCycle {
			endCycle = s.Cycle
		}
		eligibleIdle := s.Eligible - s.Issued
		if eligibleIdle < 0 {
			eligibleIdle = 0
		}
		other := s.Resident - s.Eligible - s.StallBarrier - s.StallCTABar
		if other < 0 {
			other = 0
		}
		out = append(out, traceEvent{
			Name: "sm occupancy", Ph: "C", Ts: s.Cycle, Pid: int(s.SM), Tid: 0,
			Args: map[string]any{
				"issued":        s.Issued,
				"eligible idle": eligibleIdle,
				"stall barrier": s.StallBarrier,
				"stall ctabar":  s.StallCTABar,
				"stall other":   other,
			},
		}, traceEvent{
			Name: "sm mem stall", Ph: "C", Ts: s.Cycle, Pid: int(s.SM), Tid: 0,
			Args: map[string]any{"cycles": s.MemStallCycles},
		})
	}

	// Close every span still open at the end of the run.
	for _, sp := range sortedExec(execOpen) {
		if sp.span.open {
			out = append(out, traceEvent{
				Name: "block", Ph: "E", Ts: endCycle,
				Pid: int(warpSM[sp.warp]), Tid: execTid(sp.warp),
			})
		}
	}
	for _, key := range sortedBarKeys(barOpen) {
		if barOpen[key] {
			out = append(out, traceEvent{
				Name: fmt.Sprintf("wait b%d", key[1]), Ph: "E", Ts: endCycle,
				Pid: int(warpSM[key[0]]), Tid: barTid(key[0], int16(key[1])),
			})
		}
	}

	// Track-name metadata, emitted ahead of the stream. A single-SM
	// stream keeps the historical "simt" process name; a multi-SM stream
	// gets one named, sort-ordered process per SM.
	var meta []traceEvent
	if maxSM == 0 {
		meta = append(meta, traceEvent{
			Name: "process_name", Ph: "M", Ts: 0, Pid: 0, Tid: 0,
			Args: map[string]any{"name": "simt"},
		})
	} else {
		for s := int32(0); s <= maxSM; s++ {
			meta = append(meta,
				traceEvent{
					Name: "process_name", Ph: "M", Ts: 0, Pid: int(s), Tid: 0,
					Args: map[string]any{"name": fmt.Sprintf("sm %d", s)},
				},
				traceEvent{
					Name: "process_sort_index", Ph: "M", Ts: 0, Pid: int(s), Tid: 0,
					Args: map[string]any{"sort_index": int(s)},
				})
		}
	}
	for _, warp := range sortedWarps(seenExec) {
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", Ts: 0, Pid: int(warpSM[warp]), Tid: execTid(warp),
			Args: map[string]any{"name": fmt.Sprintf("warp %d", warp)},
		})
	}
	for _, key := range sortedBarKeys(seenBar) {
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", Ts: 0, Pid: int(warpSM[key[0]]), Tid: barTid(key[0], int16(key[1])),
			Args: map[string]any{"name": fmt.Sprintf("warp %d barrier b%d", key[0], key[1])},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"})
}

// sortedWarps returns map keys in ascending order for deterministic
// output.
func sortedWarps(m map[int32]bool) []int32 {
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

type warpSpan struct {
	warp int32
	span *execSpan
}

// sortedExec returns the open exec spans ordered by warp.
func sortedExec(m map[int32]*execSpan) []warpSpan {
	warps := make([]int32, 0, len(m))
	for k := range m {
		warps = append(warps, k)
	}
	for i := 1; i < len(warps); i++ {
		for j := i; j > 0 && warps[j] < warps[j-1]; j-- {
			warps[j], warps[j-1] = warps[j-1], warps[j]
		}
	}
	out := make([]warpSpan, len(warps))
	for i, w := range warps {
		out[i] = warpSpan{warp: w, span: m[w]}
	}
	return out
}

// sortedBarKeys returns (warp, barrier) keys in ascending order.
func sortedBarKeys(m map[[2]int32]bool) [][2]int32 {
	out := make([][2]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less2(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less2(a, b [2]int32) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}
