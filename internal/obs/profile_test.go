package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"specrecon/internal/ir"
	"specrecon/internal/obs"
	"specrecon/internal/simt"
)

// divergentBarrierKernel splits the warp at a conditional branch, spins
// half the lanes through a loop, and collects everyone at a barrier — it
// exercises every counter family: issues, divergence, memory, barriers.
const divergentBarrierKernel = `module t memwords=128
func @k nregs=3 nfregs=0 {
e:
  tid r0
  join b0
  and r1, r0, #1
  cbr r1, slow, meet
slow:
  const r2, #0
  br loop
loop:
  add r2, r2, #1
  setlt r1, r2, #50
  cbr r1, loop, meet
meet:
  wait b0
  const r2, #7
  st [r0], r2
  exit
}
`

func asm(t testing.TB, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

func profiledRun(t testing.TB, m *ir.Module, cfg simt.Config) (*obs.Profile, *simt.Result) {
	t.Helper()
	p := obs.NewProfile(m)
	cfg.Events = simt.TeeSinks(p, cfg.Events)
	res, err := simt.Run(m, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return p, res
}

// TestProfileMatchesMetrics: the profile's launch-wide totals must agree
// with the simulator's own Metrics — same events, two consumers.
func TestProfileMatchesMetrics(t *testing.T) {
	m := asm(t, divergentBarrierKernel)
	p, res := profiledRun(t, m, simt.Config{Strict: true})

	if p.Issues() != res.Metrics.Issues {
		t.Errorf("profile issues = %d, metrics = %d", p.Issues(), res.Metrics.Issues)
	}
	if p.Cycles() != res.Metrics.Cycles {
		t.Errorf("profile cycles = %d, metrics = %d", p.Cycles(), res.Metrics.Cycles)
	}
	if got, want := p.SIMTEfficiency(), res.Metrics.SIMTEfficiency(); got != want {
		t.Errorf("profile simt efficiency = %f, metrics = %f", got, want)
	}
}

// TestProfileBranchCounters: the entry branch diverges exactly once
// (odd/even split of the full warp); the loop back-edge branch never
// does (the slow half stays together).
func TestProfileBranchCounters(t *testing.T) {
	m := asm(t, divergentBarrierKernel)
	p, _ := profiledRun(t, m, simt.Config{Strict: true})

	branches := p.Branches()
	if len(branches) != 2 {
		t.Fatalf("branches = %d, want 2", len(branches))
	}
	var entry, loop *obs.BranchStat
	for i := range branches {
		switch branches[i].Block {
		case "e":
			entry = &branches[i]
		case "loop":
			loop = &branches[i]
		}
	}
	if entry == nil || loop == nil {
		t.Fatalf("missing branch rows: %+v", branches)
	}
	if entry.Issues != 1 || entry.Divergent != 1 {
		t.Errorf("entry branch issues/divergent = %d/%d, want 1/1", entry.Issues, entry.Divergent)
	}
	if entry.TakenLanes != 16 || entry.NotTakenLanes != 16 {
		t.Errorf("entry branch lanes = %d taken / %d not, want 16/16", entry.TakenLanes, entry.NotTakenLanes)
	}
	if entry.Efficiency() != 0 {
		t.Errorf("entry branch efficiency = %f, want 0", entry.Efficiency())
	}
	if loop.Divergent != 0 {
		t.Errorf("loop branch divergent = %d, want 0", loop.Divergent)
	}
	if loop.Efficiency() != 1 {
		t.Errorf("loop branch efficiency = %f, want 1", loop.Efficiency())
	}
	if eff := p.BranchEfficiency(); eff <= 0 || eff >= 1 {
		t.Errorf("launch branch efficiency = %f, want in (0,1)", eff)
	}
}

// TestProfileBarrierCounters: the even half blocks at the wait while the
// odd half spins, so the barrier accumulates blocked lane-cycles, and
// that stall is attributed to the wait instruction's PC.
func TestProfileBarrierCounters(t *testing.T) {
	m := asm(t, divergentBarrierKernel)
	// Round-robin scheduling interleaves the two halves, so the fast half
	// issues its wait (and blocks) while the slow half is still looping;
	// the default max-group policy would merge everyone at meet first.
	p, res := profiledRun(t, m, simt.Config{Strict: true, Policy: simt.PolicyRoundRobin})

	bars := p.Barriers()
	if len(bars) != 1 || bars[0].Barrier != 0 {
		t.Fatalf("barriers = %+v, want one row for b0", bars)
	}
	b := bars[0]
	if b.Waits != res.Metrics.BarrierWaits {
		t.Errorf("barrier waits = %d, metrics = %d", b.Waits, res.Metrics.BarrierWaits)
	}
	if b.Releases != res.Metrics.BarrierReleases {
		t.Errorf("barrier releases = %d, metrics = %d", b.Releases, res.Metrics.BarrierReleases)
	}
	if b.BlockedCycles <= 0 {
		t.Errorf("barrier blocked cycles = %d, want > 0", b.BlockedCycles)
	}
	if got := p.BarrierStallCycles(); got != b.BlockedCycles {
		t.Errorf("BarrierStallCycles = %d, want %d", got, b.BlockedCycles)
	}

	// The wait instruction (meet#0) must carry the barrier stall.
	var waitRow *obs.PCStat
	for _, r := range p.Top(0) {
		if r.Op == "wait" {
			rr := r
			waitRow = &rr
		}
	}
	if waitRow == nil {
		t.Fatal("no wait row in Top(0)")
	}
	if waitRow.BarStall != b.BlockedCycles {
		t.Errorf("wait PC barrier stall = %d, want %d", waitRow.BarStall, b.BlockedCycles)
	}
}

// TestProfileMemStall: store issues cost more than the opcode's base
// latency when transactions miss, and the overage lands in mem_stall.
func TestProfileMemStall(t *testing.T) {
	m := asm(t, divergentBarrierKernel)
	p, _ := profiledRun(t, m, simt.Config{Strict: true})
	if p.MemStallCycles() <= 0 {
		t.Errorf("mem stall cycles = %d, want > 0", p.MemStallCycles())
	}
	for _, r := range p.Top(0) {
		if r.Op == "st" && r.MemStall <= 0 {
			t.Errorf("store row %s has mem stall %d, want > 0", r.Location(), r.MemStall)
		}
	}
}

// TestProfileTopOrdering: Top(n) truncates and is sorted by attributed
// time, hottest first.
func TestProfileTopOrdering(t *testing.T) {
	m := asm(t, divergentBarrierKernel)
	p, _ := profiledRun(t, m, simt.Config{Strict: true})

	all := p.Top(0)
	if len(all) == 0 {
		t.Fatal("empty profile")
	}
	for i := 1; i < len(all); i++ {
		if all[i].Time() > all[i-1].Time() {
			t.Fatalf("Top not sorted: row %d time %d > row %d time %d", i, all[i].Time(), i-1, all[i-1].Time())
		}
	}
	if got := p.Top(3); len(got) != 3 {
		t.Fatalf("Top(3) returned %d rows", len(got))
	}
	for _, r := range all {
		if r.Issues == 0 && r.BarStall == 0 {
			t.Fatalf("Top includes never-issued PC %d", r.PC)
		}
	}
}

// TestProfileMarkdownAndJSON: the renderers include every section and the
// JSON dump round-trips.
func TestProfileMarkdownAndJSON(t *testing.T) {
	m := asm(t, divergentBarrierKernel)
	p, _ := profiledRun(t, m, simt.Config{Strict: true})

	var md bytes.Buffer
	if err := p.WriteMarkdown(&md, 5); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	for _, want := range []string{
		"| issues | cycles | simt eff | branch eff | mem stall | barrier stall |",
		"hot spots (top 5 by attributed cycles):",
		"branches:",
		"barriers:",
		"| b0 |",
	} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q:\n%s", want, md.String())
		}
	}

	var js bytes.Buffer
	if err := p.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var dump struct {
		Summary struct {
			Issues           int64   `json:"issues"`
			BranchEfficiency float64 `json:"branch_efficiency"`
		} `json:"summary"`
		PCs      []json.RawMessage `json:"pcs"`
		Branches []json.RawMessage `json:"branches"`
		Barriers []json.RawMessage `json:"barriers"`
	}
	if err := json.Unmarshal(js.Bytes(), &dump); err != nil {
		t.Fatalf("JSON dump does not parse: %v", err)
	}
	if dump.Summary.Issues != p.Issues() {
		t.Errorf("JSON summary issues = %d, want %d", dump.Summary.Issues, p.Issues())
	}
	if len(dump.PCs) == 0 || len(dump.Branches) != 2 || len(dump.Barriers) != 1 {
		t.Errorf("JSON sections pcs=%d branches=%d barriers=%d", len(dump.PCs), len(dump.Branches), len(dump.Barriers))
	}
}

// TestProfileDiff: a profile diffed against itself reports zero deltas;
// against a run with different behavior the mover list is non-empty and
// sorted by absolute delta.
func TestProfileDiff(t *testing.T) {
	m := asm(t, divergentBarrierKernel)
	p1, _ := profiledRun(t, m, simt.Config{Strict: true})
	p2, _ := profiledRun(t, m, simt.Config{Strict: true})

	for _, d := range obs.Diff(p1, p2) {
		if d.Delta() != 0 {
			t.Errorf("self-diff block %s.%s has delta %d", d.Fn, d.Block, d.Delta())
		}
	}

	// Same kernel under the pre-Volta stack model: serialization changes
	// per-block costs, so movers must appear.
	p3, _ := profiledRun(t, m, simt.Config{Strict: true, Model: simt.ModelStack})
	deltas := obs.Diff(p1, p3)
	if len(deltas) == 0 {
		t.Fatal("stack-vs-its diff is empty")
	}
	for i := 1; i < len(deltas); i++ {
		a, b := deltas[i-1], deltas[i]
		if abs(b.Delta()) > abs(a.Delta()) {
			t.Fatalf("diff not sorted by |delta|: %d after %d", b.Delta(), a.Delta())
		}
	}

	var buf bytes.Buffer
	if err := obs.WriteDiffMarkdown(&buf, p1, p3, 5); err != nil {
		t.Fatalf("WriteDiffMarkdown: %v", err)
	}
	if !strings.Contains(buf.String(), "| block | base cycles | spec cycles |") {
		t.Errorf("diff markdown missing header:\n%s", buf.String())
	}
}

// TestProfileForkReset: a forked profile behaves exactly like a fresh
// NewProfile over the same module, and Reset returns a used profile to
// the empty state so it can be reattached — both render byte-identically
// to a freshly built profile of the same launch.
func TestProfileForkReset(t *testing.T) {
	m := asm(t, divergentBarrierKernel)
	cfg := simt.Config{Strict: true, Policy: simt.PolicyRoundRobin}

	render := func(p *obs.Profile) []byte {
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	run := func(p *obs.Profile) {
		c := cfg
		c.Events = p
		if _, err := simt.Run(m, c); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}

	fresh := obs.NewProfile(m)
	run(fresh)
	want := render(fresh)

	forked := fresh.Fork()
	run(forked)
	if got := render(forked); !bytes.Equal(got, want) {
		t.Errorf("forked profile differs from fresh profile\nforked:\n%s\nfresh:\n%s", got, want)
	}

	// Reuse the forked profile for a second launch after Reset: it must
	// report only the second launch, identically to a fresh profile.
	forked.Reset()
	if forked.Issues() != 0 {
		t.Fatalf("Issues after Reset = %d, want 0", forked.Issues())
	}
	run(forked)
	if got := render(forked); !bytes.Equal(got, want) {
		t.Errorf("reset-and-reused profile differs from fresh profile\nreused:\n%s\nfresh:\n%s", got, want)
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
