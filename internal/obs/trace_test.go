package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"specrecon/internal/obs"
	"specrecon/internal/simt"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// recordTrace runs the shared divergent+barrier kernel under round-robin
// scheduling (so barrier-wait spans have nonzero width) and returns the
// rendered trace JSON.
func recordTrace(t testing.TB) []byte {
	t.Helper()
	m := asm(t, divergentBarrierKernel)
	rec := obs.NewTraceRecorder()
	if _, err := simt.Run(m, simt.Config{Strict: true, Policy: simt.PolicyRoundRobin, Events: rec}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rec.Len() == 0 {
		t.Fatal("recorder captured no events")
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	return buf.Bytes()
}

// TestTraceGolden pins the exporter's output byte-for-byte. Regenerate
// with go test ./internal/obs -run TestTraceGolden -update after an
// intentional format change.
func TestTraceGolden(t *testing.T) {
	got := recordTrace(t)
	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace differs from %s (rerun with -update if intentional)\ngot:\n%s", golden, got)
	}
}

// TestTraceSchema validates the structural invariants Perfetto needs:
// the file parses, every event carries a known phase, timestamps are
// nondecreasing per track, and every track's B/E spans pair up.
func TestTraceSchema(t *testing.T) {
	raw := recordTrace(t)

	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	lastTs := map[int]int64{}
	openSpans := map[int]int{}
	kinds := map[string]int{}
	for i, ev := range file.TraceEvents {
		kinds[ev.Ph]++
		switch ev.Ph {
		case "M":
			if ev.Args["name"] == nil {
				t.Errorf("event %d: metadata without args.name", i)
			}
			continue
		case "B":
			openSpans[ev.Tid]++
			if openSpans[ev.Tid] > 1 {
				t.Errorf("event %d: overlapping B on tid %d", i, ev.Tid)
			}
		case "E":
			openSpans[ev.Tid]--
			if openSpans[ev.Tid] < 0 {
				t.Errorf("event %d: E without matching B on tid %d", i, ev.Tid)
			}
		case "i":
			// instants carry a scope
		default:
			t.Errorf("event %d: unknown phase %q", i, ev.Ph)
		}
		if prev, ok := lastTs[ev.Tid]; ok && ev.Ts < prev {
			t.Errorf("event %d: ts %d < %d on tid %d", i, ev.Ts, prev, ev.Tid)
		}
		lastTs[ev.Tid] = ev.Ts
	}
	for tid, n := range openSpans {
		if n != 0 {
			t.Errorf("tid %d ends with %d unclosed spans", tid, n)
		}
	}
	if kinds["M"] == 0 || kinds["B"] == 0 || kinds["E"] == 0 || kinds["i"] == 0 {
		t.Errorf("phase coverage %v: want metadata, spans and instants all present", kinds)
	}
	if kinds["B"] != kinds["E"] {
		t.Errorf("unbalanced spans: %d B vs %d E", kinds["B"], kinds["E"])
	}
}

// TestTraceHasBarrierSpan: the divergent kernel's fast half blocks at b0,
// so the trace must include a wait span on a barrier track with nonzero
// duration.
func TestTraceHasBarrierSpan(t *testing.T) {
	raw := recordTrace(t)
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("parse: %v", err)
	}
	begin := map[int]int64{}
	var spans int
	for _, ev := range file.TraceEvents {
		if ev.Name != "wait b0" {
			continue
		}
		switch ev.Ph {
		case "B":
			begin[ev.Tid] = ev.Ts
		case "E":
			if ev.Ts > begin[ev.Tid] {
				spans++
			}
		}
	}
	if spans == 0 {
		t.Error("no barrier-wait span with nonzero duration")
	}
}
