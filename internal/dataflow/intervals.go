package dataflow

import (
	"specrecon/internal/cfg"
	"specrecon/internal/ir"
)

// Barrier live intervals, paper section 4.3. "A barrier live range
// extends from the moment threads join the barrier until the barrier is
// cleared either by waiting or exiting threads. ... Two barriers are
// said to be conflicting if their live ranges overlap in a
// non-inclusive manner, i.e. neither one is a complete subset of the
// other."
//
// JoinedIntervals computes, at instruction granularity, the set of
// program points at which each barrier is joined-and-not-yet-cleared
// (the joined-barrier analysis of equation 1 with cancels included as
// clears, refined within blocks), and splits each barrier's point set
// into connected live intervals (Figure 5 reasons about b0's two
// separate intervals, not their union). Conflict detection and barrier
// register allocation are both built on these intervals.

// FuncPoints flattens a function's instruction positions into dense ids.
type FuncPoints struct {
	F      *ir.Function
	Offset []int // Offset[b] = first point id of block b
	Total  int
}

// NewFuncPoints numbers every instruction of f.
func NewFuncPoints(f *ir.Function) *FuncPoints {
	fp := &FuncPoints{F: f, Offset: make([]int, len(f.Blocks))}
	n := 0
	for i, b := range f.Blocks {
		fp.Offset[i] = n
		n += len(b.Instrs)
	}
	fp.Total = n
	return fp
}

// ID returns the dense point id of instruction instr of block block.
func (fp *FuncPoints) ID(block, instr int) int { return fp.Offset[block] + instr }

// Interval is one connected component of a barrier's joined range.
type Interval struct {
	Bar    int
	Points Bits // over FuncPoints ids
}

// JoinedIntervals computes the live intervals of every barrier in f.
func JoinedIntervals(f *ir.Function, info *cfg.Info) ([]Interval, *FuncPoints) {
	fp := NewFuncPoints(f)
	res := JoinedBarriers(f, info, true)
	at := JoinedAt(f, res, true)

	nb := NumBarriers(f)
	joined := make([]Bits, nb)
	for b := 0; b < nb; b++ {
		joined[b] = NewBits(fp.Total)
	}
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			rows := at[blk.Index]
			rows[i].ForEach(func(b int) {
				joined[b].Set(fp.ID(blk.Index, i))
			})
		}
	}

	var intervals []Interval
	for b := 0; b < nb; b++ {
		if joined[b].Count() == 0 {
			continue
		}
		intervals = append(intervals, splitComponents(f, fp, b, joined[b])...)
	}
	return intervals, fp
}

// splitComponents partitions one barrier's joined points into connected
// components. Adjacency follows execution order: consecutive
// instructions within a block, and a block's final point to each
// successor's first point.
func splitComponents(f *ir.Function, fp *FuncPoints, bar int, pts Bits) []Interval {
	visited := NewBits(fp.Total)
	var out []Interval

	// neighbors enumerates execution-order adjacency in both directions.
	preds := make([][]*ir.Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	neighbors := func(p int, visit func(int)) {
		// Locate the block containing p.
		blk := 0
		for blk+1 < len(fp.Offset) && fp.Offset[blk+1] <= p {
			blk++
		}
		idx := p - fp.Offset[blk]
		b := f.Blocks[blk]
		if idx+1 < len(b.Instrs) {
			visit(fp.ID(blk, idx+1))
		} else {
			for _, s := range b.Succs {
				if len(s.Instrs) > 0 {
					visit(fp.ID(s.Index, 0))
				}
			}
		}
		if idx > 0 {
			visit(fp.ID(blk, idx-1))
		} else {
			for _, pb := range preds[blk] {
				if len(pb.Instrs) > 0 {
					visit(fp.ID(pb.Index, len(pb.Instrs)-1))
				}
			}
		}
	}

	pts.ForEach(func(start int) {
		if visited.Has(start) {
			return
		}
		comp := NewBits(fp.Total)
		stack := []int{start}
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited.Has(p) || !pts.Has(p) {
				continue
			}
			visited.Set(p)
			comp.Set(p)
			neighbors(p, func(q int) {
				if pts.Has(q) && !visited.Has(q) {
					stack = append(stack, q)
				}
			})
		}
		out = append(out, Interval{Bar: bar, Points: comp})
	})
	return out
}

// FindConflicts returns the conflicting barrier pairs in f where one
// side is one of the given speculative barriers. The result maps each
// speculative barrier to the set of barriers it conflicts with.
func FindConflicts(f *ir.Function, specBars map[int]bool) map[int]map[int]bool {
	f.Reindex()
	info := cfg.New(f)
	intervals, _ := JoinedIntervals(f, info)

	conflicts := make(map[int]map[int]bool)
	addConflict := func(spec, other int) {
		if conflicts[spec] == nil {
			conflicts[spec] = make(map[int]bool)
		}
		conflicts[spec][other] = true
	}
	for i := 0; i < len(intervals); i++ {
		for j := i + 1; j < len(intervals); j++ {
			a, b := intervals[i], intervals[j]
			if a.Bar == b.Bar {
				continue
			}
			aSpec, bSpec := specBars[a.Bar], specBars[b.Bar]
			if !aSpec && !bSpec {
				continue
			}
			if !OverlapNonInclusive(a.Points, b.Points) {
				continue
			}
			if aSpec {
				addConflict(a.Bar, b.Bar)
			}
			if bSpec {
				addConflict(b.Bar, a.Bar)
			}
		}
	}
	return conflicts
}

// OverlapNonInclusive reports whether the two point sets intersect with
// neither containing the other — the section-4.3 conflict predicate.
func OverlapNonInclusive(a, b Bits) bool {
	anyInter := false
	aInB, bInA := true, true
	for i := range a {
		if a[i]&b[i] != 0 {
			anyInter = true
		}
		if a[i]&^b[i] != 0 {
			aInB = false
		}
		if b[i]&^a[i] != 0 {
			bInA = false
		}
	}
	return anyInter && !aInB && !bInA
}
