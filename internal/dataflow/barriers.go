package dataflow

import (
	"specrecon/internal/cfg"
	"specrecon/internal/ir"
)

// NumBarriers returns one more than the highest barrier register index
// used in f (so barrier bitsets are wide enough), at least 1.
func NumBarriers(f *ir.Function) int {
	n := f.MaxBarrier() + 1
	if n < 1 {
		n = 1
	}
	return n
}

// JoinedBarriers implements the paper's equation (1): a forward union
// analysis where JoinBarrier generates joined-ness and WaitBarrier kills
// it. A barrier is "joined" at a point P if some path from program start
// to P contains a JoinBarrier not followed by a WaitBarrier.
//
// includeCancels extends the kill set with CancelBarrier, which the paper
// ignores during initial placement (cancels are not yet inserted) but
// which matters when the analysis is re-run for conflict detection, where
// a live range "extends from the moment threads join the barrier until
// the barrier is cleared either by waiting or exiting threads".
func JoinedBarriers(f *ir.Function, info *cfg.Info, includeCancels bool) *Result {
	nb := NumBarriers(f)
	return Solve(f, info, Problem{
		Dir:     Forward,
		NumBits: nb,
		Gen: func(b *ir.Block) Bits {
			gen := NewBits(nb)
			for i := range b.Instrs {
				switch in := &b.Instrs[i]; in.Op {
				case ir.OpJoin:
					gen.Set(in.Bar)
				case ir.OpWait, ir.OpWaitN:
					gen.Clear(in.Bar)
				case ir.OpCancel:
					if includeCancels {
						gen.Clear(in.Bar)
					}
				}
			}
			return gen
		},
		Kill: func(b *ir.Block) Bits {
			kill := NewBits(nb)
			for i := range b.Instrs {
				switch in := &b.Instrs[i]; in.Op {
				case ir.OpJoin:
					kill.Clear(in.Bar)
				case ir.OpWait, ir.OpWaitN:
					kill.Set(in.Bar)
				case ir.OpCancel:
					if includeCancels {
						kill.Set(in.Bar)
					}
				}
			}
			return kill
		},
	})
}

// LiveBarriers implements the paper's equation (2): a backward union
// analysis where WaitBarrier generates liveness and JoinBarrier kills it.
// A barrier is live at P if a WaitBarrier lies on some path from P to the
// end of the program.
func LiveBarriers(f *ir.Function, info *cfg.Info) *Result {
	nb := NumBarriers(f)
	return Solve(f, info, Problem{
		Dir:     Backward,
		NumBits: nb,
		Gen: func(b *ir.Block) Bits {
			gen := NewBits(nb)
			// Scan backward so the earliest instruction dominates the
			// block summary.
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				switch in := &b.Instrs[i]; in.Op {
				case ir.OpWait, ir.OpWaitN:
					gen.Set(in.Bar)
				case ir.OpJoin:
					gen.Clear(in.Bar)
				}
			}
			return gen
		},
		Kill: func(b *ir.Block) Bits {
			kill := NewBits(nb)
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				switch in := &b.Instrs[i]; in.Op {
				case ir.OpWait, ir.OpWaitN:
					kill.Clear(in.Bar)
				case ir.OpJoin:
					kill.Set(in.Bar)
				}
			}
			return kill
		},
	})
}

// Point identifies one instruction position inside a function.
type Point struct {
	Block int // Block.Index
	Instr int // instruction index within the block
}

// JoinedAt refines a JoinedBarriers result to instruction granularity:
// it returns, for each block, the joined set *before* each instruction.
// The slice is indexed [blockIndex][instrIndex].
func JoinedAt(f *ir.Function, res *Result, includeCancels bool) [][]Bits {
	out := make([][]Bits, len(f.Blocks))
	for _, b := range f.Blocks {
		cur := res.In[b.Index].Clone()
		rows := make([]Bits, len(b.Instrs))
		for i := range b.Instrs {
			rows[i] = cur.Clone()
			switch in := &b.Instrs[i]; in.Op {
			case ir.OpJoin:
				cur.Set(in.Bar)
			case ir.OpWait, ir.OpWaitN:
				cur.Clear(in.Bar)
			case ir.OpCancel:
				if includeCancels {
					cur.Clear(in.Bar)
				}
			}
		}
		out[b.Index] = rows
	}
	return out
}

// RegLiveness computes backward liveness of the integer and float
// register files (two independent problems, returned separately). It is
// used by cost models and by sanity checks in tests.
func RegLiveness(f *ir.Function, info *cfg.Info) (ints, floats *Result) {
	ints = regLiveness(f, info, false)
	floats = regLiveness(f, info, true)
	return ints, floats
}

func regLiveness(f *ir.Function, info *cfg.Info, floats bool) *Result {
	n := f.NRegs
	if floats {
		n = f.NFRegs
	}
	if n < 1 {
		n = 1
	}
	file := fileOfInterest(floats)
	return Solve(f, info, Problem{
		Dir:     Backward,
		NumBits: n,
		Gen: func(b *ir.Block) Bits {
			gen := NewBits(n)
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := &b.Instrs[i]
				if d, dfile := dstOf(in); dfile == file && d >= 0 {
					gen.Clear(int(d))
				}
				for _, u := range usesOf(in, file) {
					if u >= 0 {
						gen.Set(int(u))
					}
				}
			}
			return gen
		},
		Kill: func(b *ir.Block) Bits {
			kill := NewBits(n)
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := &b.Instrs[i]
				if d, dfile := dstOf(in); dfile == file && d >= 0 {
					kill.Set(int(d))
				}
				for _, u := range usesOf(in, file) {
					if u >= 0 {
						kill.Clear(int(u))
					}
				}
			}
			return kill
		},
	})
}

type regFileTag int

const (
	tagInt regFileTag = iota
	tagFloat
)

func fileOfInterest(floats bool) regFileTag {
	if floats {
		return tagFloat
	}
	return tagInt
}

// dstOf returns the destination register of in and which file it is in.
func dstOf(in *ir.Instr) (ir.Reg, regFileTag) {
	dsts := ir.OperandFiles(in.Op)
	if dsts.Dst == ir.FileFloat {
		return in.Dst, tagFloat
	}
	if dsts.Dst == ir.FileInt {
		return in.Dst, tagInt
	}
	return ir.NoReg, tagInt
}

// usesOf returns the source registers of in belonging to the given file.
func usesOf(in *ir.Instr, file regFileTag) []ir.Reg {
	sig := ir.OperandFiles(in.Op)
	var uses []ir.Reg
	add := func(r ir.Reg, f ir.OperandFile) {
		if r < 0 {
			return
		}
		if (f == ir.FileInt && file == tagInt) || (f == ir.FileFloat && file == tagFloat) {
			uses = append(uses, r)
		}
	}
	add(in.A, sig.A)
	if !in.BImm {
		add(in.B, sig.B)
	}
	add(in.C, sig.C)
	return uses
}
