package dataflow

import (
	"testing"
	"testing/quick"

	"specrecon/internal/cfg"
	"specrecon/internal/ir"
)

func TestBitsBasics(t *testing.T) {
	b := NewBits(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Has(0) || !b.Has(64) || !b.Has(129) || b.Has(1) {
		t.Fatal("Set/Has broken")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 2 {
		t.Fatal("Clear broken")
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Fatalf("ForEach = %v", got)
	}
}

// Property tests on bitset algebra via testing/quick.
func TestBitsProperties(t *testing.T) {
	mk := func(xs []uint16, n int) Bits {
		b := NewBits(n)
		for _, x := range xs {
			b.Set(int(x) % n)
		}
		return b
	}
	const n = 200

	union := func(xs, ys []uint16) bool {
		a, b := mk(xs, n), mk(ys, n)
		u := a.Clone()
		u.UnionWith(b)
		for i := 0; i < n; i++ {
			if u.Has(i) != (a.Has(i) || b.Has(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(union, nil); err != nil {
		t.Errorf("union property: %v", err)
	}

	andNot := func(xs, ys []uint16) bool {
		a, b := mk(xs, n), mk(ys, n)
		d := a.Clone()
		d.AndNot(b)
		for i := 0; i < n; i++ {
			if d.Has(i) != (a.Has(i) && !b.Has(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(andNot, nil); err != nil {
		t.Errorf("andnot property: %v", err)
	}

	unionIdempotent := func(xs []uint16) bool {
		a := mk(xs, n)
		c := a.Clone()
		changed := c.UnionWith(a)
		return !changed && c.Equal(a)
	}
	if err := quick.Check(unionIdempotent, nil); err != nil {
		t.Errorf("idempotence property: %v", err)
	}
}

// buildFigure4 reconstructs the CFG of the paper's Figure 4 with the
// synchronization hints of Figure 4(a) inserted:
//
//	BB0 (join b0) -> BB1 -> BB2 -> {BB3, BB4}
//	BB3 (wait b0) -> BB4 ; BB4 (epilog) -> {BB1, BB5} ; BB5 exit
func buildFigure4(t *testing.T) (*ir.Function, *cfg.Info) {
	t.Helper()
	m := ir.NewModule("fig4")
	f := m.NewFunction("kernel")
	f.NRegs = 1
	bb0 := f.NewBlock("BB0")
	bb1 := f.NewBlock("BB1")
	bb2 := f.NewBlock("BB2")
	bb3 := f.NewBlock("BB3")
	bb4 := f.NewBlock("BB4")
	bb5 := f.NewBlock("BB5")

	bar := func(op ir.Opcode) ir.Instr {
		return ir.Instr{Op: op, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Bar: 0}
	}
	tid := ir.Instr{Op: ir.OpTid, Dst: 0, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}
	br := ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}
	cbr := ir.Instr{Op: ir.OpCBr, Dst: ir.NoReg, A: 0, B: ir.NoReg, C: ir.NoReg}
	exit := ir.Instr{Op: ir.OpExit, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}

	bb0.Instrs = []ir.Instr{bar(ir.OpJoin), br} // JoinBarrier(b0): region start
	bb0.Succs = []*ir.Block{bb1}
	bb1.Instrs = []ir.Instr{tid, br} // loop header / prolog
	bb1.Succs = []*ir.Block{bb2}
	bb2.Instrs = []ir.Instr{cbr} // divergent condition
	bb2.Succs = []*ir.Block{bb3, bb4}
	bb3.Instrs = []ir.Instr{bar(ir.OpWait), br} // WaitBarrier(b0): convergence point
	bb3.Succs = []*ir.Block{bb4}
	bb4.Instrs = []ir.Instr{cbr} // epilog: loop back or leave
	bb4.Succs = []*ir.Block{bb1, bb5}
	bb5.Instrs = []ir.Instr{exit}

	if err := ir.VerifyFunction(f); err != nil {
		t.Fatalf("figure 4 function invalid: %v", err)
	}
	return f, cfg.New(f)
}

// TestJoinedBarriersFigure4 checks equation (1) against the worked
// example: "In Figure 4(b), the barrier at BB3 is joined at BB0 and
// cleared at BB3" — JoinedOut is {b0} everywhere except BB3.
func TestJoinedBarriersFigure4(t *testing.T) {
	f, info := buildFigure4(t)
	res := JoinedBarriers(f, info, false)

	wantOut := map[string]bool{
		"BB0": true, "BB1": true, "BB2": true,
		"BB3": false, // cleared by the wait
		"BB4": true, "BB5": true,
	}
	for _, b := range f.Blocks {
		got := res.Out[b.Index].Has(0)
		if got != wantOut[b.Name] {
			t.Errorf("JoinedOut(%s) = %v, want %v", b.Name, got, wantOut[b.Name])
		}
	}
}

// TestLiveBarriersFigure4 checks equation (2) against the worked
// example: "In Figure 4(c), the barrier b0 is dead at BB5 and BB0" —
// LiveOut is {b0} everywhere except BB5 (and the join in BB0 kills
// liveness above it, i.e. LiveIn(BB0) is empty).
func TestLiveBarriersFigure4(t *testing.T) {
	f, info := buildFigure4(t)
	res := LiveBarriers(f, info)

	wantOut := map[string]bool{
		"BB0": true, "BB1": true, "BB2": true, "BB3": true, "BB4": true,
		"BB5": false,
	}
	for _, b := range f.Blocks {
		got := res.Out[b.Index].Has(0)
		if got != wantOut[b.Name] {
			t.Errorf("LiveOut(%s) = %v, want %v", b.Name, got, wantOut[b.Name])
		}
	}
	if res.In[f.BlockByName("BB0").Index].Has(0) {
		t.Error("LiveIn(BB0) should be empty: the join kills liveness")
	}
}

// TestJoinedAtInstructionGranularity verifies the within-block
// refinement: before the wait in BB3 the barrier is joined; after it
// (i.e. before the following branch) it is not.
func TestJoinedAtInstructionGranularity(t *testing.T) {
	f, info := buildFigure4(t)
	res := JoinedBarriers(f, info, false)
	at := JoinedAt(f, res, false)
	bb3 := f.BlockByName("BB3")
	if !at[bb3.Index][0].Has(0) {
		t.Error("barrier should be joined before the wait in BB3")
	}
	if at[bb3.Index][1].Has(0) {
		t.Error("barrier should be cleared after the wait in BB3")
	}
	bb0 := f.BlockByName("BB0")
	if at[bb0.Index][0].Has(0) {
		// Before the join in BB0 the barrier is joined only via the
		// loop path... there is no path back to BB0, so it must be
		// clear.
		t.Error("barrier must not be joined before the join in BB0")
	}
}

// TestCancelsExtendKills checks includeCancels: a cancel clears
// joined-ness for conflict analysis.
func TestCancelsExtendKills(t *testing.T) {
	f, info := buildFigure4(t)
	// Put a cancel at the top of BB5.
	f.BlockByName("BB5").InsertTop(ir.Instr{Op: ir.OpCancel, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Bar: 0})

	without := JoinedBarriers(f, info, false)
	if !without.Out[f.BlockByName("BB5").Index].Has(0) {
		t.Error("ignoring cancels, barrier should remain joined at BB5 exit")
	}
	with := JoinedBarriers(f, info, true)
	if with.Out[f.BlockByName("BB5").Index].Has(0) {
		t.Error("with cancels, barrier should be cleared at BB5 exit")
	}
}

// TestRegLiveness checks backward register liveness on a tiny function.
func TestRegLiveness(t *testing.T) {
	m := ir.NewModule("live")
	f := m.NewFunction("kernel")
	b := ir.NewBuilder(f)
	entry := f.NewBlock("entry")
	use := f.NewBlock("use")
	b.SetBlock(entry)
	x := b.Const(42) // defined here, used in 'use' -> live across the edge
	y := b.Const(7)  // defined and immediately dead
	_ = y
	b.Br(use)
	b.SetBlock(use)
	z := b.AddI(x, 1)
	b.Store(z, 0, x)
	b.Exit()

	info := cfg.New(f)
	ints, _ := RegLiveness(f, info)
	if !ints.Out[entry.Index].Has(int(x)) {
		t.Errorf("r%d should be live out of entry", x)
	}
	if ints.Out[entry.Index].Has(int(y)) {
		t.Errorf("r%d should be dead out of entry", y)
	}
	if ints.In[use.Index].Has(int(z)) {
		t.Errorf("r%d is defined in 'use'; must not be live in", z)
	}
}

// TestSolverReachesFixpointOnLoop ensures the worklist handles cyclic
// flow: a barrier joined before a loop must be joined throughout it.
func TestSolverReachesFixpointOnLoop(t *testing.T) {
	f, info := buildFigure4(t)
	// Remove the wait in BB3 so the barrier stays joined through the
	// whole loop.
	bb3 := f.BlockByName("BB3")
	bb3.Instrs = bb3.Instrs[1:]
	res := JoinedBarriers(f, info, false)
	for _, b := range f.Blocks {
		if !res.Out[b.Index].Has(0) {
			t.Errorf("barrier should be joined at %s with no wait anywhere", b.Name)
		}
	}
}
