package dataflow

import (
	"testing"

	"specrecon/internal/cfg"
	"specrecon/internal/ir"
)

// CFG edge cases for the equation-1/equation-2 solvers: self-loop
// blocks (a back edge from a block to itself), unreachable blocks with
// edges into live code, and loops with multiple back-edges into one
// header. Each is a shape the worklist iteration must fixpoint through
// correctly rather than a shape the workloads happen to exercise.

// TestSelfLoopBlock pins the single-block loop: the block's own OUT
// feeds its IN (forward) and its own IN feeds its OUT (backward), so
// a join inside the block must flow around the self edge.
func TestSelfLoopBlock(t *testing.T) {
	m := ir.NewModule("selfloop")
	f := m.NewFunction("k")
	b := ir.NewBuilder(f)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	done := f.NewBlock("done")

	b.SetBlock(entry)
	bar := b.Barrier()
	b.Br(loop)

	b.SetBlock(loop)
	b.Join(bar)
	cond := b.Rand()
	b.CBr(cond, loop, done)

	b.SetBlock(done)
	b.Wait(bar)
	b.Exit()

	f.Reindex()
	info := cfg.New(f)

	joined := JoinedBarriers(f, info, false)
	// Equation 1: the join reaches the top of its own block around the
	// self edge — without the self-edge union IN would stay empty.
	if !joined.In[loop.Index].Has(bar) {
		t.Errorf("eq1: joined IN of self-loop block misses b%d", bar)
	}
	if !joined.In[done.Index].Has(bar) {
		t.Errorf("eq1: joined IN of loop exit misses b%d", bar)
	}
	if joined.Out[done.Index].Has(bar) {
		t.Errorf("eq1: wait did not clear b%d at exit OUT", bar)
	}

	live := LiveBarriers(f, info)
	// Equation 2: the wait ahead makes the barrier live at the bottom of
	// the self-loop block, but the join at its top kills liveness before
	// the block entry.
	if !live.Out[loop.Index].Has(bar) {
		t.Errorf("eq2: live OUT of self-loop block misses b%d", bar)
	}
	if live.In[loop.Index].Has(bar) {
		t.Errorf("eq2: join failed to kill liveness at self-loop block IN")
	}
	if !live.In[done.Index].Has(bar) {
		t.Errorf("eq2: live IN of waiting block misses b%d", bar)
	}
}

// TestUnreachableBlockDoesNotPoison pins the treatment of dead code: a
// block no path reaches, even one with an edge into live code, must
// contribute nothing — its joins never reach the merge's IN, because
// the solver iterates reverse postorder of the reachable region and an
// unreachable predecessor's OUT stays bottom.
func TestUnreachableBlockDoesNotPoison(t *testing.T) {
	m := ir.NewModule("island")
	f := m.NewFunction("k")
	b := ir.NewBuilder(f)
	entry := f.NewBlock("entry")
	merge := f.NewBlock("merge")
	island := f.NewBlock("island")

	b.SetBlock(entry)
	bar := b.Barrier()
	b.Br(merge)

	b.SetBlock(merge)
	b.Exit()

	b.SetBlock(island) // no predecessors, but an edge into merge
	b.Join(bar)
	b.Br(merge)

	f.Reindex()
	info := cfg.New(f)
	if info.Reachable(island) {
		t.Fatal("island unexpectedly reachable")
	}

	joined := JoinedBarriers(f, info, false)
	if joined.In[merge.Index].Has(bar) {
		t.Errorf("eq1: unreachable join of b%d poisoned the reachable merge", bar)
	}
	if joined.Out[island.Index].Has(bar) {
		t.Errorf("eq1: unreachable block's OUT was computed; it should stay bottom")
	}
}

// TestMultipleBackEdges pins a loop with two latches (the continue
// pattern): both back edges must feed the header's IN under equation 1,
// and liveness must flow backward through both under equation 2.
func TestMultipleBackEdges(t *testing.T) {
	m := ir.NewModule("twolatch")
	f := m.NewFunction("k")
	b := ir.NewBuilder(f)
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	latchA := f.NewBlock("latchA")
	latchB := f.NewBlock("latchB")
	done := f.NewBlock("done")

	b.SetBlock(entry)
	bar := b.Barrier()
	b.Br(header)

	b.SetBlock(header)
	c := b.Rand()
	b.CBr(c, body, done)

	b.SetBlock(body)
	b.Join(bar)
	c2 := b.Rand()
	b.CBr(c2, latchA, latchB)

	b.SetBlock(latchA)
	b.Br(header)

	b.SetBlock(latchB)
	b.Br(header)

	b.SetBlock(done)
	b.Wait(bar)
	b.Exit()

	f.Reindex()
	info := cfg.New(f)

	joined := JoinedBarriers(f, info, false)
	// Equation 1: joined-ness flows around the loop through BOTH
	// latches into the header, and from there to the exit where the
	// wait clears it.
	for _, blk := range []*ir.Block{latchA, latchB} {
		if !joined.Out[blk.Index].Has(bar) {
			t.Errorf("eq1: joined OUT of %s misses b%d", blk.Name, bar)
		}
	}
	if !joined.In[header.Index].Has(bar) {
		t.Errorf("eq1: joined IN of two-latch header misses b%d", bar)
	}
	if !joined.In[done.Index].Has(bar) {
		t.Errorf("eq1: joined IN of exit misses b%d", bar)
	}
	if joined.Out[done.Index].Has(bar) {
		t.Errorf("eq1: wait did not clear b%d", bar)
	}

	live := LiveBarriers(f, info)
	// Equation 2: the wait makes the barrier live throughout the loop
	// skeleton (header and both latches — a wait lies ahead of each),
	// and the join kills liveness at the body's entry.
	for _, blk := range []*ir.Block{header, latchA, latchB} {
		if !live.In[blk.Index].Has(bar) {
			t.Errorf("eq2: live IN of %s misses b%d", blk.Name, bar)
		}
	}
	if live.In[body.Index].Has(bar) {
		t.Errorf("eq2: join failed to kill liveness at body IN")
	}
}
