// Package dataflow provides a small generic bitset dataflow solver plus
// the two analyses of the paper's section 4.2.1: joined-barrier analysis
// (equation 1, a forward may-analysis telling at each point whether a
// barrier has been joined and not yet cleared) and barrier live-range
// analysis (equation 2, a backward may-analysis telling whether a
// WaitBarrier lies ahead). Register liveness for the verifier and cost
// models reuses the same solver.
package dataflow

import (
	"math/bits"

	"specrecon/internal/cfg"
	"specrecon/internal/ir"
)

// Bits is a fixed-width bitset.
type Bits []uint64

// NewBits returns a bitset able to hold n bits.
func NewBits(n int) Bits { return make(Bits, (n+63)/64) }

func (b Bits) Set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b Bits) Clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b Bits) Has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Copy copies src into b; both must have the same width.
func (b Bits) Copy(src Bits) { copy(b, src) }

// UnionWith ors src into b, reporting whether b changed.
func (b Bits) UnionWith(src Bits) bool {
	changed := false
	for i, w := range src {
		nw := b[i] | w
		if nw != b[i] {
			b[i] = nw
			changed = true
		}
	}
	return changed
}

// AndNot removes src's bits from b.
func (b Bits) AndNot(src Bits) {
	for i, w := range src {
		b[i] &^= w
	}
}

// Or sets b = x | y.
func (b Bits) Or(x, y Bits) {
	for i := range b {
		b[i] = x[i] | y[i]
	}
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports bit equality.
func (b Bits) Equal(o Bits) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order.
func (b Bits) ForEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			fn(wi*64 + i)
			w &= w - 1
		}
	}
}

// Clone returns a copy of b.
func (b Bits) Clone() Bits {
	out := make(Bits, len(b))
	copy(out, b)
	return out
}

// Direction selects forward or backward propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Problem describes a gen/kill union dataflow problem at block
// granularity: OUT = (IN − Kill) ∪ Gen for forward problems, and
// symmetrically for backward ones, with IN the union over predecessor
// OUTs (successor INs when backward).
type Problem struct {
	Dir     Direction
	NumBits int
	// Gen and Kill give each block's composed gen/kill sets.
	Gen  func(b *ir.Block) Bits
	Kill func(b *ir.Block) Bits
}

// Result holds per-block IN and OUT sets indexed by Block.Index.
type Result struct {
	In, Out []Bits
}

// Solve runs the worklist algorithm to a fixed point.
func Solve(f *ir.Function, info *cfg.Info, p Problem) *Result {
	n := len(f.Blocks)
	res := &Result{In: make([]Bits, n), Out: make([]Bits, n)}
	gen := make([]Bits, n)
	kill := make([]Bits, n)
	for i, b := range f.Blocks {
		res.In[i] = NewBits(p.NumBits)
		res.Out[i] = NewBits(p.NumBits)
		gen[i] = p.Gen(b)
		kill[i] = p.Kill(b)
	}

	// Iteration order: RPO for forward problems, reverse RPO for
	// backward ones, repeated until stable.
	order := make([]*ir.Block, len(info.RPO))
	copy(order, info.RPO)
	if p.Dir == Backward {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}

	tmp := NewBits(p.NumBits)
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			i := b.Index
			if p.Dir == Forward {
				// IN = union of predecessor OUTs
				for k := range res.In[i] {
					res.In[i][k] = 0
				}
				for _, pr := range info.Preds[i] {
					res.In[i].UnionWith(res.Out[pr.Index])
				}
				// OUT = (IN - kill) | gen
				tmp.Copy(res.In[i])
				tmp.AndNot(kill[i])
				tmp.UnionWith(gen[i])
				if !tmp.Equal(res.Out[i]) {
					res.Out[i].Copy(tmp)
					changed = true
				}
			} else {
				// OUT = union of successor INs
				for k := range res.Out[i] {
					res.Out[i][k] = 0
				}
				for _, s := range b.Succs {
					res.Out[i].UnionWith(res.In[s.Index])
				}
				// IN = (OUT - kill) | gen
				tmp.Copy(res.Out[i])
				tmp.AndNot(kill[i])
				tmp.UnionWith(gen[i])
				if !tmp.Equal(res.In[i]) {
					res.In[i].Copy(tmp)
					changed = true
				}
			}
		}
	}
	return res
}
