package dataflow

import (
	"specrecon/internal/cfg"
	"specrecon/internal/ir"
)

// Interprocedural refinements of the equation-1 analysis. Barrier
// registers are warp state shared across the call graph, so module-level
// consumers (lint, the barrier-safety verifier, the static analyzer)
// need a module-wide barrier count and a model of what a call does to
// the joined set.

// ModuleNumBarriers returns one more than the highest barrier register
// used anywhere in the module (barriers span functions
// interprocedurally), at least 1.
func ModuleNumBarriers(m *ir.Module) int {
	nb := 1
	for _, f := range m.Funcs {
		if n := NumBarriers(f); n > nb {
			nb = n
		}
	}
	return nb
}

// CalleeEntryWaits maps each function to the barriers its entry block
// waits on before any branch — the interprocedural reconvergence pattern
// of §4.4. A call to such a function is guaranteed to clear those
// barriers, which the joined-at-exit analysis must model or every
// interprocedural prediction would be a false positive.
func CalleeEntryWaits(m *ir.Module) map[string][]int {
	out := map[string][]int{}
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			continue
		}
		entry := f.Entry()
		for i := range entry.Instrs {
			in := &entry.Instrs[i]
			if in.Op == ir.OpWait || in.Op == ir.OpWaitN {
				out[f.Name] = append(out[f.Name], in.Bar)
			}
		}
	}
	return out
}

// JoinedAtWithCalls runs the forward joined-barrier analysis of equation
// (1) with cancels as clears and calls clearing their callee's
// entry-waited barriers, refined to instruction granularity: the
// returned [blockIndex][instrIndex] set is the joined set *before* that
// instruction.
func JoinedAtWithCalls(f *ir.Function, info *cfg.Info, nb int, entryWaits map[string][]int) [][]Bits {
	transfer := func(set Bits, in *ir.Instr) {
		switch in.Op {
		case ir.OpJoin:
			set.Set(in.Bar)
		case ir.OpWait, ir.OpWaitN, ir.OpCancel:
			set.Clear(in.Bar)
		case ir.OpCall:
			for _, bar := range entryWaits[in.Callee] {
				set.Clear(bar)
			}
		}
	}
	res := Solve(f, info, Problem{
		Dir:     Forward,
		NumBits: nb,
		Gen: func(b *ir.Block) Bits {
			gen := NewBits(nb)
			for i := range b.Instrs {
				transfer(gen, &b.Instrs[i])
			}
			return gen
		},
		Kill: func(b *ir.Block) Bits {
			kill := NewBits(nb)
			for i := range b.Instrs {
				switch in := &b.Instrs[i]; in.Op {
				case ir.OpJoin:
					kill.Clear(in.Bar)
				case ir.OpWait, ir.OpWaitN, ir.OpCancel:
					kill.Set(in.Bar)
				case ir.OpCall:
					for _, bar := range entryWaits[in.Callee] {
						kill.Set(bar)
					}
				}
			}
			return kill
		},
	})
	out := make([][]Bits, len(f.Blocks))
	for _, b := range f.Blocks {
		cur := res.In[b.Index].Clone()
		rows := make([]Bits, len(b.Instrs))
		for i := range b.Instrs {
			rows[i] = cur.Clone()
			transfer(cur, &b.Instrs[i])
		}
		out[b.Index] = rows
	}
	return out
}
