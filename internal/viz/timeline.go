// Package viz renders ASCII lane-occupancy timelines from simulator
// traces — the textual equivalent of the paper's Figure 1 and Figure 3(b)
// execution cartoons. Each row is one issued warp instruction (optionally
// downsampled); each column is a lane; the glyph is the executing block's
// letter, with '.' for an inactive lane.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"specrecon/internal/ir"
	"specrecon/internal/simt"
)

// issueRec is the slice of an issue event the timeline needs.
type issueRec struct {
	issue int64
	block string
	mask  uint32
}

// Timeline accumulates issue events for one warp and renders them. It is
// a simt.EventSink over the generalized event stream (simt.Config.Events)
// and ignores every kind but EvIssue.
type Timeline struct {
	warp   int
	events []issueRec
	glyphs map[string]byte
	order  []string
}

// NewTimeline returns a timeline recorder for the given warp index.
func NewTimeline(warp int) *Timeline {
	return &Timeline{warp: warp, glyphs: make(map[string]byte)}
}

// Event implements simt.EventSink; attach the timeline via
// simt.Config.Events.
func (t *Timeline) Event(ev simt.Event) {
	if ev.Kind != simt.EvIssue || int(ev.Warp) != t.warp {
		return
	}
	if _, ok := t.glyphs[ev.BlockName]; !ok {
		t.glyphs[ev.BlockName] = t.glyphFor(ev.BlockName)
		t.order = append(t.order, ev.BlockName)
	}
	t.events = append(t.events, issueRec{issue: ev.Issue, block: ev.BlockName, mask: ev.Mask})
}

// glyphFor picks an unused glyph, preferring the block name's letters so
// timelines stay readable.
func (t *Timeline) glyphFor(block string) byte {
	taken := make(map[byte]bool, len(t.glyphs))
	for _, g := range t.glyphs {
		taken[g] = true
	}
	upper := func(c byte) byte {
		if c >= 'a' && c <= 'z' {
			return c - 'a' + 'A'
		}
		return c
	}
	for i := 0; i < len(block); i++ {
		c := upper(block[i])
		if c >= 'A' && c <= 'Z' && !taken[c] {
			return c
		}
	}
	for c := byte('A'); c <= 'Z'; c++ {
		if !taken[c] {
			return c
		}
	}
	return byte('0' + len(t.glyphs)%10)
}

// Render draws at most maxRows rows, downsampling evenly when the trace
// is longer, followed by a legend mapping glyphs to block names.
func (t *Timeline) Render(maxRows int) string {
	if len(t.events) == 0 {
		return "(empty trace)\n"
	}
	step := 1
	if maxRows > 0 && len(t.events) > maxRows {
		step = (len(t.events) + maxRows - 1) / maxRows
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "issue    lanes 0..%d\n", ir.WarpWidth-1)
	for i := 0; i < len(t.events); i += step {
		ev := t.events[i]
		var row [ir.WarpWidth]byte
		for l := 0; l < ir.WarpWidth; l++ {
			if ev.mask&(1<<l) != 0 {
				row[l] = t.glyphs[ev.block]
			} else {
				row[l] = '.'
			}
		}
		fmt.Fprintf(&sb, "%7d  %s\n", ev.issue, string(row[:]))
	}
	sb.WriteString("\nlegend: ")
	// Stable legend order: first-seen blocks.
	legend := make([]string, 0, len(t.order))
	for _, name := range t.order {
		legend = append(legend, fmt.Sprintf("%c=%s", t.glyphs[name], name))
	}
	sb.WriteString(strings.Join(legend, " "))
	sb.WriteString("\n")
	return sb.String()
}

// OccupancyHistogram summarizes how many issues ran with each active-lane
// count; a compact view of SIMT efficiency structure.
func (t *Timeline) OccupancyHistogram() string {
	counts := make(map[int]int)
	for _, ev := range t.events {
		n := 0
		for m := ev.mask; m != 0; m &= m - 1 {
			n++
		}
		counts[n]++
	}
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sb strings.Builder
	sb.WriteString("active-lanes  issues\n")
	maxCount := 0
	for _, k := range keys {
		if counts[k] > maxCount {
			maxCount = counts[k]
		}
	}
	for _, k := range keys {
		bar := strings.Repeat("#", counts[k]*40/maxCount)
		fmt.Fprintf(&sb, "%12d  %6d %s\n", k, counts[k], bar)
	}
	return sb.String()
}
