package viz

import (
	"strings"
	"testing"

	"specrecon/internal/ir"
	"specrecon/internal/simt"
)

func buildKernel(t *testing.T) *ir.Module {
	t.Helper()
	src := `module t memwords=64
func @k nregs=2 nfregs=0 {
entry:
  tid r0
  and r1, r0, #1
  cbr r1, odd, even
odd:
  st [r0], r1
  exit
even:
  st [r0], r1
  exit
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTimelineRender(t *testing.T) {
	m := buildKernel(t)
	tl := NewTimeline(0)
	if _, err := simt.Run(m, simt.Config{Strict: true, Events: tl}); err != nil {
		t.Fatal(err)
	}
	out := tl.Render(100)
	if !strings.Contains(out, "legend:") {
		t.Error("render missing legend")
	}
	lines := strings.Split(out, "\n")
	// Every timeline row must be exactly warp-width glyphs wide.
	rows := 0
	for _, ln := range lines[1:] {
		if !strings.Contains(ln, "  ") || strings.HasPrefix(ln, "legend") || ln == "" {
			continue
		}
		fields := strings.Fields(ln)
		if len(fields) != 2 {
			continue
		}
		if len(fields[1]) != ir.WarpWidth {
			t.Errorf("row width %d, want %d: %q", len(fields[1]), ir.WarpWidth, ln)
		}
		rows++
	}
	if rows == 0 {
		t.Error("no timeline rows rendered")
	}
	// Divergent halves must show up as partial rows ('.' present).
	if !strings.Contains(out, ".") {
		t.Error("expected inactive lanes in a divergent kernel")
	}
}

func TestTimelineDownsamples(t *testing.T) {
	m := buildKernel(t)
	tl := NewTimeline(0)
	if _, err := simt.Run(m, simt.Config{Strict: true, Events: tl}); err != nil {
		t.Fatal(err)
	}
	out := tl.Render(2)
	rows := 0
	for _, ln := range strings.Split(out, "\n") {
		fields := strings.Fields(ln)
		if len(fields) == 2 && len(fields[1]) == ir.WarpWidth {
			rows++
		}
	}
	if rows > 3 {
		t.Errorf("downsampling to 2 rows produced %d rows", rows)
	}
}

func TestUniqueGlyphs(t *testing.T) {
	m := buildKernel(t)
	tl := NewTimeline(0)
	if _, err := simt.Run(m, simt.Config{Strict: true, Events: tl}); err != nil {
		t.Fatal(err)
	}
	seen := map[byte]string{}
	for name, g := range tl.glyphs {
		if prev, dup := seen[g]; dup {
			t.Errorf("glyph %c shared by %q and %q", g, prev, name)
		}
		seen[g] = name
	}
}

func TestOccupancyHistogram(t *testing.T) {
	m := buildKernel(t)
	tl := NewTimeline(0)
	if _, err := simt.Run(m, simt.Config{Strict: true, Events: tl}); err != nil {
		t.Fatal(err)
	}
	h := tl.OccupancyHistogram()
	if !strings.Contains(h, "32") || !strings.Contains(h, "16") {
		t.Errorf("histogram should show full-warp and half-warp rows:\n%s", h)
	}
}

func TestEmptyTimeline(t *testing.T) {
	tl := NewTimeline(3) // warp 3 never traced
	if out := tl.Render(10); !strings.Contains(out, "empty") {
		t.Errorf("empty render = %q", out)
	}
}
