// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by the SIMT simulator and the workload generators.
//
// Determinism matters here: every experiment in this repository must be
// exactly reproducible, including per-thread random sequences inside
// simulated kernels (Monte Carlo trip counts, Russian-roulette termination,
// and so on). The generator is SplitMix64 (Steele, Lea, Flood 2014), which
// is tiny, fast, passes BigCrush when used as a 64-bit generator, and is
// trivially splittable: independent streams are derived by hashing a
// (seed, stream) pair.
package rng

import "math"

// golden is 2^64 / phi, the SplitMix64 increment.
const golden = 0x9e3779b97f4a7c15

// Source is a deterministic 64-bit PRNG. The zero value is a valid
// generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split returns an independent Source derived from seed and stream.
// Distinct (seed, stream) pairs yield decorrelated sequences; the same
// pair always yields the same sequence.
func Split(seed, stream uint64) *Source {
	// Mix the stream id through one SplitMix64 round so that consecutive
	// stream ids land far apart in the state space.
	return &Source{state: mix(seed ^ mix(stream))}
}

// Reseed resets s in place to the exact state Split(seed, stream) would
// construct, so pooled per-lane sources can be reused across launches
// without reallocating.
func (s *Source) Reseed(seed, stream uint64) {
	s.state = mix(seed ^ mix(stream))
}

func mix(z uint64) uint64 {
	z += golden
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next value in the sequence.
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a value in [lo, hi]. It panics if hi < lo.
func (s *Source) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range called with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Float64 returns a value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Geometric returns the number of Bernoulli(p) trials up to and including
// the first success, i.e. a geometric variate with support {1, 2, ...}.
// It panics unless 0 < p <= 1.
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	n := 1
	for s.Float64() >= p {
		n++
	}
	return n
}
