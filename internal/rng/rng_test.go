package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d times in 1000 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	s0 := Split(7, 0)
	s1 := Split(7, 1)
	collisions := 0
	for i := 0; i < 1000; i++ {
		if s0.Uint64() == s1.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Errorf("split streams collided %d times", collisions)
	}
	// Same (seed, stream) replays exactly.
	a, b := Split(7, 5), Split(7, 5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("split stream not reproducible")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	check := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnAndRangeBounds(t *testing.T) {
	check := func(seed uint64, n uint16, lo int8, span uint8) bool {
		s := New(seed)
		nn := int(n%1000) + 1
		for i := 0; i < 50; i++ {
			if v := s.Intn(nn); v < 0 || v >= nn {
				return false
			}
		}
		l, h := int(lo), int(lo)+int(span)
		for i := 0; i < 50; i++ {
			if v := s.Range(l, h); v < l || v > h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(99)
	for i := 0; i < 10000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned a negative value")
		}
	}
}

func TestUniformity(t *testing.T) {
	// Coarse chi-square-ish check over 16 buckets.
	s := New(2024)
	const draws = 160000
	var buckets [16]int
	for i := 0; i < draws; i++ {
		buckets[s.Intn(16)]++
	}
	want := draws / 16
	for i, got := range buckets {
		if math.Abs(float64(got-want)) > 0.05*float64(want) {
			t.Errorf("bucket %d = %d, want about %d", i, got, want)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(5)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += s.Exp(3.0)
	}
	mean := sum / draws
	if mean < 2.9 || mean > 3.1 {
		t.Errorf("Exp(3) sample mean = %f", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(6)
	const draws = 100000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += s.Geometric(0.25)
	}
	mean := float64(sum) / draws
	if mean < 3.9 || mean > 4.1 {
		t.Errorf("Geometric(0.25) sample mean = %f, want about 4", mean)
	}
}

func TestPanics(t *testing.T) {
	s := New(1)
	for _, fn := range []func(){
		func() { s.Intn(0) },
		func() { s.Range(3, 2) },
		func() { s.Geometric(0) },
		func() { s.Geometric(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
