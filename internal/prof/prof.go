// Package prof wires the standard runtime/pprof profilers behind the
// -cpuprofile/-memprofile flags of the command-line tools. It exists so
// cmd/figures and cmd/specrecon share one implementation and identical
// semantics: the CPU profile covers the whole run, and the heap profile
// is written after a final GC so it reflects live steady-state memory.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the given file names (empty = disabled) and
// returns a stop function that must run before the process exits —
// typically via defer in main. The stop function finishes the CPU
// profile and writes the heap profile.
func Start(cpuFile, memFile string) (func(), error) {
	var cpu *os.File
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpu = f
	}
	stop := func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize accurate live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
	return stop, nil
}
