package repair

import (
	"strings"
	"testing"

	"specrecon/internal/analyze"
	"specrecon/internal/ir"
)

// editModule builds a small two-block module for anchor validation:
// entry holds [join b0, wait b0, br body], body holds [add, exit].
func editModule() *ir.Module {
	m := ir.NewModule("edits")
	f := m.NewFunction("k")
	b := ir.NewBuilder(f)
	entry := f.NewBlock("entry")
	body := f.NewBlock("body")
	b.SetBlock(entry)
	bar := b.Barrier()
	b.Join(bar)
	b.Wait(bar)
	b.Br(body)
	b.SetBlock(body)
	r := b.Const(1)
	b.Add(r, r)
	b.Exit()
	return m
}

func coded(e analyze.Edit) []codedEdit {
	return []codedEdit{{code: analyze.CodeJoinedAtExit, edit: e}}
}

// TestApplyEditsValidation: every malformed anchor must abort the batch
// with an error instead of corrupting the module.
func TestApplyEditsValidation(t *testing.T) {
	cases := []struct {
		name string
		edit analyze.Edit
		want string
	}{
		{"unknown function", analyze.Edit{Kind: analyze.EditDelete, Fn: "nope", Block: "entry", Index: 0}, "no such block"},
		{"unknown block", analyze.Edit{Kind: analyze.EditDelete, Fn: "k", Block: "nope", Index: 0}, "no such block"},
		{"insert out of range", analyze.Edit{Kind: analyze.EditInsert, Fn: "k", Block: "entry", Index: 3, Op: ir.OpCancel}, "out of range"},
		{"delete terminator", analyze.Edit{Kind: analyze.EditDelete, Fn: "k", Block: "entry", Index: 2}, "out of range or names the terminator"},
		{"delete negative", analyze.Edit{Kind: analyze.EditDelete, Fn: "k", Block: "entry", Index: -1}, "out of range"},
		{"replace non-barrier op", analyze.Edit{Kind: analyze.EditReplaceBar, Fn: "k", Block: "body", Index: 1, Bar: 1}, "no barrier operand"},
		{"unknown kind", analyze.Edit{Kind: analyze.EditKind(99), Fn: "k", Block: "entry", Index: 0}, "unknown edit kind"},
	}
	for _, tc := range cases {
		m := editModule()
		before := ir.Print(m)
		err := applyEdits(m, coded(tc.edit))
		if err == nil {
			t.Errorf("%s: applyEdits accepted a malformed edit", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if got := ir.Print(m); got != before {
			t.Errorf("%s: module mutated by a rejected batch", tc.name)
		}
	}
}

// TestApplyEditsReplaceBar: a valid barrier-operand replacement must
// rewrite exactly the named instruction's barrier.
func TestApplyEditsReplaceBar(t *testing.T) {
	m := editModule()
	e := analyze.Edit{Kind: analyze.EditReplaceBar, Fn: "k", Block: "entry", Index: 1, Op: ir.OpWait, Bar: 3}
	if err := applyEdits(m, coded(e)); err != nil {
		t.Fatal(err)
	}
	in := m.FuncByName("k").BlockByName("entry").Instrs[1]
	if in.Op != ir.OpWait || in.Bar != 3 {
		t.Errorf("instruction after replace = %s b%d, want wait b3", in.Op, in.Bar)
	}
}

// TestCollectEditsOneConflictPerRound pins the SR1005 fixpoint policy:
// a partial overlap is reported from both sides, and applying both
// cancels in one batch mutually truncates the pair into a fresh
// overlap, so at most one conflict edit survives per round while edits
// for other codes ride along untouched.
func TestCollectEditsOneConflictPerRound(t *testing.T) {
	conflictA := analyze.Edit{Kind: analyze.EditInsert, Fn: "k", Block: "entry", Index: 1, Op: ir.OpCancel, Bar: 0}
	conflictB := analyze.Edit{Kind: analyze.EditInsert, Fn: "k", Block: "body", Index: 0, Op: ir.OpCancel, Bar: 1}
	release := analyze.Edit{Kind: analyze.EditInsert, Fn: "k", Block: "body", Index: 1, Op: ir.OpCancel, Bar: 2}
	errs := []analyze.Diagnostic{
		{Code: analyze.CodeResidualConflict, Severity: analyze.SeverityError, Edits: []analyze.Edit{conflictA}},
		{Code: analyze.CodeResidualConflict, Severity: analyze.SeverityError, Edits: []analyze.Edit{conflictB}},
		{Code: analyze.CodeJoinedAtExit, Severity: analyze.SeverityError, Edits: []analyze.Edit{release}},
	}
	batch := collectEdits(errs)
	conflicts, others := 0, 0
	for _, ce := range batch {
		if ce.code == analyze.CodeResidualConflict {
			conflicts++
		} else {
			others++
		}
	}
	if conflicts != 1 {
		t.Errorf("%d conflict edits in one round, want exactly 1", conflicts)
	}
	if others != 1 {
		t.Errorf("%d non-conflict edits, want 1 (other codes are not rationed)", others)
	}
}

// TestCollectEditsDedupes: two diagnostics requesting the identical
// mutation contribute it once.
func TestCollectEditsDedupes(t *testing.T) {
	e := analyze.Edit{Kind: analyze.EditInsert, Fn: "k", Block: "entry", Index: 1, Op: ir.OpCancel, Bar: 0}
	errs := []analyze.Diagnostic{
		{Code: analyze.CodeJoinedAtExit, Severity: analyze.SeverityError, Edits: []analyze.Edit{e}},
		{Code: analyze.CodeJoinedAtExit, Severity: analyze.SeverityError, Edits: []analyze.Edit{e}},
	}
	if batch := collectEdits(errs); len(batch) != 1 {
		t.Errorf("duplicate edit kept %d times, want 1", len(batch))
	}
}

// TestCollectEditsOrder: within a block, higher indices apply first so
// earlier anchors stay valid, and a delete sorts before an insert at
// the same index.
func TestCollectEditsOrder(t *testing.T) {
	low := analyze.Edit{Kind: analyze.EditInsert, Fn: "k", Block: "entry", Index: 0, Op: ir.OpCancel, Bar: 0}
	high := analyze.Edit{Kind: analyze.EditInsert, Fn: "k", Block: "entry", Index: 4, Op: ir.OpCancel, Bar: 0}
	del := analyze.Edit{Kind: analyze.EditDelete, Fn: "k", Block: "entry", Index: 4}
	errs := []analyze.Diagnostic{
		{Code: analyze.CodeJoinedAtExit, Severity: analyze.SeverityError, Edits: []analyze.Edit{low, high}},
		{Code: analyze.CodeWaitNeverJoined, Severity: analyze.SeverityError, Edits: []analyze.Edit{del}},
	}
	batch := collectEdits(errs)
	if len(batch) != 3 {
		t.Fatalf("got %d edits, want 3", len(batch))
	}
	if batch[0].edit != del {
		t.Errorf("first edit %v, want the delete at the highest index", batch[0].edit)
	}
	if batch[1].edit != high || batch[2].edit != low {
		t.Errorf("order %v, %v; want high-index insert then low-index insert", batch[1].edit, batch[2].edit)
	}
}

// TestFingerprintTracksModule: the oscillation detector's fingerprint
// must be stable across clones and move when the module changes.
func TestFingerprintTracksModule(t *testing.T) {
	m := editModule()
	if fingerprint(m) != fingerprint(m.Clone()) {
		t.Error("fingerprint differs between a module and its clone")
	}
	before := fingerprint(m)
	m.FuncByName("k").BlockByName("entry").InsertAt(0, ir.Instr{Op: ir.OpCancel, Bar: 0})
	if fingerprint(m) == before {
		t.Error("fingerprint unchanged after an edit")
	}
}
