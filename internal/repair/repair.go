// Package repair is the analysis-driven automated repair engine
// (GPURepair-style, arXiv 2011.08373): it takes the machine-applicable
// edits the static analyzer attaches to its error diagnostics
// (analyze.Edit), applies them to the module, re-runs the analysis, and
// iterates to a fixpoint under a bounded budget with oscillation
// detection. CompileSafe uses it to try repair-then-reverify before
// surrendering a kernel to the PDOM fail-safe, and `sasmvet -fix`
// exposes it on the command line.
//
// The per-SR-code edit synthesizers live where the diagnostics are
// emitted (internal/analyze); this package enforces the repair policy —
// which codes are machine-repairable at all — and owns the fixpoint
// driver. The policy only admits edits that are behavior-neutral or
// protocol-restoring:
//
//	SR1001 (wait never joined):   delete the orphaned waits — with no
//	                              join anywhere they release an empty
//	                              cohort immediately, so deletion is a
//	                              no-op at runtime.
//	SR1002 (joined at exit):      insert CancelBarrier before the
//	                              exiting terminator — the canonical
//	                              release for participation that would
//	                              otherwise leak.
//	SR1004 (lost rejoin):         insert JoinBarrier immediately after
//	                              the loop-carried speculative wait,
//	                              restoring the Figure 4(d) discipline.
//	SR1005 (residual conflict):   insert CancelBarrier of the
//	                              conflicting barrier before the
//	                              speculative wait — exactly what
//	                              dynamic deconfliction (§4.3) emits.
//	                              Applied ONE per iteration: a partial
//	                              overlap is reported from both sides,
//	                              and inserting both cancels at once
//	                              mutually truncates the pair into a new
//	                              partial overlap, while a single cancel
//	                              usually restores containment and the
//	                              re-analysis dissolves the symmetric
//	                              diagnostic for free.
//	SR1003 (lost wait):           unrepairable by design. The sound
//	                              position of a lost WaitBarrier is the
//	                              region's reconvergence point, which
//	                              the diagnostic cannot reconstruct; a
//	                              guessed wait could deadlock. These
//	                              kernels fall back to PDOM.
package repair

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"specrecon/internal/analyze"
	"specrecon/internal/ir"
)

// DefaultMaxIters bounds the fixpoint: each iteration applies a whole
// batch of edits, and every repairable code converges in one or two
// rounds, so a budget this small only trips on pathological inputs.
const DefaultMaxIters = 8

// Options configures Repair.
type Options struct {
	// ClassOf forwards barrier provenance to the analyzer (nil treats
	// the module as raw input, skipping the class-gated checks).
	ClassOf func(bar int) analyze.BarrierClass
	// EffNoteBelow forwards the low-efficiency note threshold so the
	// Before report matches what a plain analysis would show.
	EffNoteBelow float64
	// MaxIters bounds the fixpoint iterations (0 = DefaultMaxIters).
	MaxIters int
}

// GiveUpReason says why the fixpoint stopped with errors remaining.
type GiveUpReason string

const (
	// GaveUpNone: the fixpoint reached a clean re-analysis.
	GaveUpNone GiveUpReason = ""
	// GaveUpNoEdit: error diagnostics remain but none carries a
	// machine-applicable edit (e.g. SR1003).
	GaveUpNoEdit GiveUpReason = "no-edit"
	// GaveUpBudget: the iteration budget ran out before convergence.
	GaveUpBudget GiveUpReason = "budget"
	// GaveUpOscillation: an edit batch reproduced a module state already
	// visited — the repair loop is cycling, not converging.
	GaveUpOscillation GiveUpReason = "oscillation"
	// GaveUpBadEdit: an edit's anchor did not resolve against the
	// module (synthesizer/analyzer disagreement — a bug, surfaced
	// rather than papered over).
	GaveUpBadEdit GiveUpReason = "bad-edit"
)

// AppliedEdit records one edit the driver applied, with the iteration
// and the diagnostic code that requested it.
type AppliedEdit struct {
	Iter int
	Code analyze.Code
	Edit analyze.Edit
}

// Report is the typed result of one Repair run.
type Report struct {
	// Before is the full diagnostic report of the module as handed in
	// (errors, warnings, notes) — the findings the applied edits answer.
	Before []analyze.Diagnostic
	// Iterations counts the edit batches applied.
	Iterations int
	// Edits lists every applied edit in application order.
	Edits []AppliedEdit
	// Resolved lists the error codes present initially and absent after
	// the last iteration, ascending.
	Resolved []analyze.Code
	// Remaining holds the error diagnostics still present when the
	// driver stopped (empty on a clean fixpoint).
	Remaining []analyze.Diagnostic
	// GaveUp is GaveUpNone on success, else the stop reason.
	GaveUp GiveUpReason
}

// Clean reports whether repair converged to zero error diagnostics.
func (r *Report) Clean() bool { return len(r.Remaining) == 0 }

// Summary renders the report in one line for remarks and CLI output.
func (r *Report) Summary() string {
	if len(r.Edits) == 0 && r.Clean() {
		return "no repair needed"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d edit(s) in %d iteration(s)", len(r.Edits), r.Iterations)
	if len(r.Resolved) > 0 {
		codes := make([]string, len(r.Resolved))
		for i, c := range r.Resolved {
			codes[i] = string(c)
		}
		fmt.Fprintf(&sb, ", resolved %s", strings.Join(codes, " "))
	}
	if r.Clean() {
		sb.WriteString("; clean")
	} else {
		fmt.Fprintf(&sb, "; gave up (%s), %d error(s) remain", r.GaveUp, len(r.Remaining))
	}
	return sb.String()
}

// Repairable reports whether an edit synthesizer exists for code — i.e.
// whether a diagnostic of this code can carry machine edits at all.
func Repairable(code analyze.Code) bool {
	switch code {
	case analyze.CodeWaitNeverJoined, analyze.CodeJoinedAtExit,
		analyze.CodeLostRejoin, analyze.CodeResidualConflict:
		return true
	}
	return false
}

// EditsFor returns the machine edits the repair policy admits for d:
// the synthesized edits for repairable error codes, nil otherwise.
func EditsFor(d analyze.Diagnostic) []analyze.Edit {
	if d.Severity != analyze.SeverityError || !Repairable(d.Code) {
		return nil
	}
	return d.Edits
}

// Repair drives the analyze-edit-reanalyze fixpoint over m, mutating it
// in place (clone first to keep the original). It never fails: the
// outcome, including every stop reason, is the Report.
func Repair(m *ir.Module, opts Options) *Report {
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = DefaultMaxIters
	}
	aOpts := analyze.Options{ClassOf: opts.ClassOf, EffNoteBelow: opts.EffNoteBelow}

	rep := analyze.Analyze(m, aOpts)
	r := &Report{Before: rep.Diags}
	initial := errorCodes(rep.Errors())

	seen := map[uint64]bool{fingerprint(m): true}
	for iter := 1; ; iter++ {
		errs := rep.Errors()
		if len(errs) == 0 {
			break
		}
		r.Remaining = errs
		if iter > maxIters {
			r.GaveUp = GaveUpBudget
			break
		}
		batch := collectEdits(errs)
		if len(batch) == 0 {
			r.GaveUp = GaveUpNoEdit
			break
		}
		if err := applyEdits(m, batch); err != nil {
			r.GaveUp = GaveUpBadEdit
			break
		}
		r.Iterations = iter
		for _, e := range batch {
			r.Edits = append(r.Edits, AppliedEdit{Iter: iter, Code: e.code, Edit: e.edit})
		}
		rep = analyze.Analyze(m, aOpts)
		r.Remaining = rep.Errors()
		if fp := fingerprint(m); seen[fp] {
			r.GaveUp = GaveUpOscillation
			break
		} else {
			seen[fp] = true
		}
	}

	remaining := errorCodes(r.Remaining)
	for _, c := range initial {
		still := false
		for _, rc := range remaining {
			if rc == c {
				still = true
				break
			}
		}
		if !still {
			r.Resolved = append(r.Resolved, c)
		}
	}
	return r
}

// codedEdit pairs an edit with the diagnostic code that requested it.
type codedEdit struct {
	code analyze.Code
	edit analyze.Edit
}

// collectEdits gathers the policy-admitted edits of one analysis round,
// deduplicated (two diagnostics may request the same mutation) and
// sorted for deterministic, index-safe application: within a block,
// higher indices first so earlier positions stay valid, deletes before
// inserts at equal index. SR1005 contributes at most one edit per round
// (see the package policy table): conflict cancels are applied one at a
// time so the fixpoint can observe which symmetric diagnostics each one
// dissolves.
func collectEdits(errs []analyze.Diagnostic) []codedEdit {
	var out []codedEdit
	seen := map[analyze.Edit]bool{}
	for _, d := range errs {
		for _, e := range EditsFor(d) {
			if seen[e] {
				continue
			}
			seen[e] = true
			out = append(out, codedEdit{code: d.Code, edit: e})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].edit, out[j].edit
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Index != b.Index {
			return a.Index > b.Index
		}
		if a.Kind != b.Kind {
			return a.Kind == analyze.EditDelete
		}
		if a.Bar != b.Bar {
			return a.Bar < b.Bar
		}
		return a.Op < b.Op
	})
	// Keep only the first conflict cancel; the rest re-synthesize (or
	// vanish) on the next analysis round.
	kept := out[:0]
	tookConflict := false
	for _, ce := range out {
		if ce.code == analyze.CodeResidualConflict {
			if tookConflict {
				continue
			}
			tookConflict = true
		}
		kept = append(kept, ce)
	}
	return kept
}

// applyEdits applies one sorted batch, validating every anchor: the
// named function and block must exist, indices must be in range, a
// delete must not remove a terminator and an insert must stay at or
// before it. Any violation aborts the whole batch.
func applyEdits(m *ir.Module, batch []codedEdit) error {
	blockOf := func(fn, block string) *ir.Block {
		for _, f := range m.Funcs {
			if f.Name != fn {
				continue
			}
			for _, b := range f.Blocks {
				if b.Name == block {
					return b
				}
			}
		}
		return nil
	}
	for _, ce := range batch {
		e := ce.edit
		b := blockOf(e.Fn, e.Block)
		if b == nil {
			return fmt.Errorf("repair: %s: no such block", e)
		}
		switch e.Kind {
		case analyze.EditInsert:
			if e.Index < 0 || e.Index > len(b.Instrs)-1 {
				return fmt.Errorf("repair: %s: insert index out of range (block has %d instructions)", e, len(b.Instrs))
			}
			b.InsertAt(e.Index, e.Instr())
		case analyze.EditDelete:
			if e.Index < 0 || e.Index >= len(b.Instrs)-1 {
				return fmt.Errorf("repair: %s: delete index out of range or names the terminator (block has %d instructions)", e, len(b.Instrs))
			}
			b.RemoveAt(e.Index)
		case analyze.EditReplaceBar:
			if e.Index < 0 || e.Index >= len(b.Instrs) {
				return fmt.Errorf("repair: %s: index out of range (block has %d instructions)", e, len(b.Instrs))
			}
			if !b.Instrs[e.Index].Op.IsBarrierOp() {
				return fmt.Errorf("repair: %s: instruction %q has no barrier operand", e, ir.FormatInstr(&b.Instrs[e.Index], nil))
			}
			b.Instrs[e.Index].Bar = e.Bar
		default:
			return fmt.Errorf("repair: %s: unknown edit kind", e)
		}
	}
	return nil
}

// errorCodes returns the distinct codes present, ascending.
func errorCodes(errs []analyze.Diagnostic) []analyze.Code {
	seen := map[analyze.Code]bool{}
	var out []analyze.Code
	for _, d := range errs {
		if !seen[d.Code] {
			seen[d.Code] = true
			out = append(out, d.Code)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// fingerprint hashes the module's canonical text for oscillation
// detection; every edit changes the print, so a repeated fingerprint
// means the loop revisited a prior state.
func fingerprint(m *ir.Module) uint64 {
	h := fnv.New64a()
	h.Write([]byte(ir.Print(m)))
	return h.Sum64()
}
