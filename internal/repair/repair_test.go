package repair_test

import (
	"strings"
	"testing"

	"specrecon/internal/analyze"
	"specrecon/internal/core"
	"specrecon/internal/diffcheck"
	"specrecon/internal/ir"
	"specrecon/internal/repair"
)

// matrixFault returns the named fault from the injection matrix.
func matrixFault(t *testing.T, name string) diffcheck.Fault {
	t.Helper()
	for _, f := range diffcheck.FaultMatrix() {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("fault %s not in the matrix", name)
	return diffcheck.Fault{}
}

// TestMatrixRepairOutcomes drives every statically-visible matrix fault
// through CompileSafe's repair-then-reverify stage and holds the
// outcome against the matrix's WantRepaired column in both directions:
// every repairable fault must come back as a clean repaired build that
// passes its differential proof obligation, and the designated
// unrepairable fault must still degrade to the PDOM fail-safe.
func TestMatrixRepairOutcomes(t *testing.T) {
	k := diffcheck.MatrixKernel()
	for _, f := range diffcheck.FaultMatrix() {
		if !f.WantStatic {
			continue
		}
		opts := core.SpecReconOptions()
		opts.Faults = f.Plan
		sc, err := core.CompileSafe(k.Module, opts)
		if err != nil {
			t.Errorf("%s: CompileSafe: %v", f.Name, err)
			continue
		}
		if !f.WantRepaired {
			if sc.Repaired != nil {
				t.Errorf("%s: repaired a fault the matrix pins as unrepairable", f.Name)
			}
			if !sc.FellBack {
				t.Errorf("%s: expected a PDOM fallback, got an accepted build", f.Name)
			}
			continue
		}
		if sc.FellBack {
			t.Errorf("%s: fell back (%v), want repaired", f.Name, sc.FallbackErr)
			continue
		}
		if sc.Repaired == nil {
			t.Errorf("%s: build accepted without repair; the fault did not bite", f.Name)
			continue
		}
		rep := sc.Repaired.Report
		if !rep.Clean() || len(rep.Edits) == 0 {
			t.Errorf("%s: repair report not clean (%s)", f.Name, rep.Summary())
		}
		// Proof obligation: the repaired speculative build must agree
		// with the un-repaired PDOM baseline on the memory image.
		res := diffcheck.Check(k, diffcheck.Options{
			Faults: f.Plan, AutoAnnotate: true, Verify: true, Repair: true,
		})
		if !res.OK {
			t.Errorf("%s: differential proof failed at %s: %v", f.Name, res.Stage, res.Err)
		}
		if !res.Repaired {
			t.Errorf("%s: differential check did not engage the repair pipeline", f.Name)
		}
	}
}

// TestUnrepairableGivesUpNoEdit pins the repair driver's stop reason on
// the matrix's designated unrepairable fault: SR1003 synthesizes no
// machine edit, so the fixpoint must give up immediately with "no-edit"
// and an untouched module.
func TestUnrepairableGivesUpNoEdit(t *testing.T) {
	k := diffcheck.MatrixKernel()
	opts := core.SpecReconOptions()
	opts.Faults = matrixFault(t, "drop-wait@1").Plan
	comp, err := core.DiagnoseRepaired(k.Module, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := comp.RepairReport
	if rep == nil {
		t.Fatal("DiagnoseRepaired produced no repair report")
	}
	if rep.GaveUp != repair.GaveUpNoEdit {
		t.Errorf("gave up %q, want %q", rep.GaveUp, repair.GaveUpNoEdit)
	}
	if len(rep.Edits) != 0 {
		t.Errorf("%d edits applied to an unrepairable build", len(rep.Edits))
	}
	if rep.Clean() {
		t.Error("report claims a clean fixpoint on an unrepairable build")
	}
}

// TestRepairCleanNoOp: an analyzer-clean module must pass through the
// driver untouched.
func TestRepairCleanNoOp(t *testing.T) {
	m := diffcheck.MatrixKernel().Module.Clone()
	before := ir.Print(m)
	rep := repair.Repair(m, repair.Options{})
	if len(rep.Edits) != 0 || !rep.Clean() || rep.GaveUp != repair.GaveUpNone {
		t.Fatalf("clean module perturbed: %s", rep.Summary())
	}
	if rep.Summary() != "no repair needed" {
		t.Errorf("summary %q, want %q", rep.Summary(), "no repair needed")
	}
	if got := ir.Print(m); got != before {
		t.Errorf("module mutated by a no-op repair:\n%s", got)
	}
}

// TestRepairDeletesOrphanWait exercises the SR1001 synthesizer on a raw
// module: a wait on a barrier nothing ever joins is an orphan, and the
// repair is to delete it.
func TestRepairDeletesOrphanWait(t *testing.T) {
	m := ir.NewModule("orphan")
	f := m.NewFunction("k")
	b := ir.NewBuilder(f)
	b.SetBlock(f.NewBlock("entry"))
	bar := b.Barrier()
	b.Wait(bar)
	b.Exit()

	rep := repair.Repair(m, repair.Options{})
	if !rep.Clean() || rep.GaveUp != repair.GaveUpNone {
		t.Fatalf("repair did not converge: %s", rep.Summary())
	}
	if len(rep.Edits) != 1 || rep.Edits[0].Edit.Kind != analyze.EditDelete {
		t.Fatalf("edits = %+v, want one delete", rep.Edits)
	}
	if rep.Edits[0].Code != analyze.CodeWaitNeverJoined {
		t.Errorf("edit attributed to %s, want %s", rep.Edits[0].Code, analyze.CodeWaitNeverJoined)
	}
	if out := ir.Print(m); strings.Contains(out, "wait") {
		t.Errorf("orphan wait survived repair:\n%s", out)
	}
	found := false
	for _, c := range rep.Resolved {
		if c == analyze.CodeWaitNeverJoined {
			found = true
		}
	}
	if !found {
		t.Errorf("Resolved = %v, want %s present", rep.Resolved, analyze.CodeWaitNeverJoined)
	}
}

// TestRepairIterationBudget pins the budget stop reason: swap-waits
// needs two fixpoint rounds (the first round's edits dissolve part of
// the tangle, the re-analysis drives the rest), so a one-iteration
// budget must give up with "budget" while the default budget converges.
func TestRepairIterationBudget(t *testing.T) {
	k := diffcheck.MatrixKernel()
	opts := core.SpecReconOptions()
	opts.Faults = matrixFault(t, "swap-waits").Plan
	comp, err := core.Diagnose(k.Module, opts)
	if err != nil {
		t.Fatal(err)
	}
	spec := func(int) analyze.BarrierClass { return analyze.ClassSpec }

	rep := repair.Repair(comp.Module.Clone(), repair.Options{ClassOf: spec})
	if !rep.Clean() || rep.Iterations < 2 {
		t.Fatalf("default budget: clean=%v after %d iteration(s), want clean in >= 2 (%s)",
			rep.Clean(), rep.Iterations, rep.Summary())
	}

	tight := repair.Repair(comp.Module.Clone(), repair.Options{ClassOf: spec, MaxIters: 1})
	if tight.GaveUp != repair.GaveUpBudget {
		t.Errorf("one-iteration budget gave up %q, want %q", tight.GaveUp, repair.GaveUpBudget)
	}
	if tight.Clean() {
		t.Error("one-iteration budget claims a clean fixpoint on a two-round repair")
	}
}

// TestRepairableTable pins the policy table: exactly the four codes
// with synthesizers answer true, and EditsFor filters by both severity
// and repairability.
func TestRepairableTable(t *testing.T) {
	want := map[analyze.Code]bool{
		analyze.CodeWaitNeverJoined:  true,
		analyze.CodeJoinedAtExit:     true,
		analyze.CodeLostRejoin:       true,
		analyze.CodeResidualConflict: true,
		analyze.CodeLostWait:         false,
	}
	for code, ok := range want {
		if repair.Repairable(code) != ok {
			t.Errorf("Repairable(%s) = %v, want %v", code, !ok, ok)
		}
	}
	edit := analyze.Edit{Kind: analyze.EditDelete, Fn: "k", Block: "entry", Index: 0}
	d := analyze.Diagnostic{Code: analyze.CodeWaitNeverJoined, Severity: analyze.SeverityError, Edits: []analyze.Edit{edit}}
	if got := repair.EditsFor(d); len(got) != 1 {
		t.Errorf("EditsFor(repairable error) = %v, want the attached edit", got)
	}
	d.Severity = analyze.SeverityWarning
	if got := repair.EditsFor(d); got != nil {
		t.Errorf("EditsFor(warning) = %v, want nil", got)
	}
	d.Severity = analyze.SeverityError
	d.Code = analyze.CodeLostWait
	if got := repair.EditsFor(d); got != nil {
		t.Errorf("EditsFor(SR1003) = %v, want nil", got)
	}
}
