// Package specrecon is the public facade of this repository: a
// reproduction of "Speculative Reconvergence for Improved SIMT
// Efficiency" (Damani et al., CGO 2020) as a Go library.
//
// The library bundles three layers:
//
//   - a SIMT virtual ISA and compiler infrastructure (internal/ir,
//     internal/cfg, internal/dataflow, internal/divergence);
//   - the paper's contribution — prediction-guided synchronization
//     insertion, deconfliction, soft barriers, interprocedural
//     reconvergence and automatic detection (internal/core);
//   - a Volta-style warp simulator with convergence barriers and a
//     coalescing memory model (internal/simt), plus the paper's
//     benchmark suite (internal/workloads) and experiment drivers
//     (internal/harness).
//
// This package re-exports the types and entry points a downstream user
// needs: build or parse a kernel, annotate reconvergence points, compile
// baseline or speculative variants, run them, and read the metrics.
// See examples/ for complete programs.
package specrecon

import (
	"io"

	"specrecon/internal/analyze"
	"specrecon/internal/ccache"
	"specrecon/internal/core"
	"specrecon/internal/diffcheck"
	"specrecon/internal/harness"
	"specrecon/internal/ir"
	"specrecon/internal/obs"
	"specrecon/internal/repair"
	"specrecon/internal/simt"
	"specrecon/internal/workloads"
)

// Re-exported IR types. Construct kernels with NewModule/NewBuilder or
// parse the textual format with ParseModule.
type (
	Module     = ir.Module
	Function   = ir.Function
	Block      = ir.Block
	Instr      = ir.Instr
	Builder    = ir.Builder
	Prediction = ir.Prediction
)

// WarpWidth is the simulated warp width (32 lanes, as on NVIDIA parts).
const WarpWidth = ir.WarpWidth

// NewModule returns an empty module named name.
func NewModule(name string) *Module { return ir.NewModule(name) }

// NewBuilder returns a cursor-based builder over f.
func NewBuilder(f *Function) *Builder { return ir.NewBuilder(f) }

// ParseModule reads the textual assembly format (see PrintModule).
func ParseModule(src string) (*Module, error) { return ir.Parse(src) }

// PrintModule renders a module in the textual assembly format.
func PrintModule(m *Module) string { return ir.Print(m) }

// VerifyModule checks structural well-formedness.
func VerifyModule(m *Module) error { return ir.VerifyModule(m) }

// Compilation options and results (see internal/core for details).
type (
	CompileOptions = core.Options
	Compilation    = core.Compilation
	Candidate      = core.Candidate
)

// Deconfliction strategies (paper section 4.3).
const (
	DeconflictDynamic = core.DeconflictDynamic
	DeconflictStatic  = core.DeconflictStatic
	DeconflictNone    = core.DeconflictNone
)

// BaselineOptions compiles with standard post-dominator synchronization
// only — what a stock GPU compiler emits.
func BaselineOptions() CompileOptions { return core.BaselineOptions() }

// SpecReconOptions compiles with speculative reconvergence applied on
// top of the baseline, using dynamic deconfliction as in the paper's
// evaluation.
func SpecReconOptions() CompileOptions { return core.SpecReconOptions() }

// Compile clones m and runs the configured pass pipeline over it.
func Compile(m *Module, opts CompileOptions) (*Compilation, error) {
	return core.Compile(m, opts)
}

// Pass-manager types: a compilation is an ordered Pipeline of registered
// passes, each instrumented with wall time, instruction deltas and an
// optimization-remarks stream (Compilation.PassStats / .Remarks).
type (
	Pipeline = core.Pipeline
	PassStat = core.PassStat
	Remark   = core.Remark
	PassInfo = core.PassInfo
)

// ParsePipeline parses a pass spec string such as
// "pdom,predict,deconflict=dynamic,alloc" into a Pipeline.
func ParsePipeline(spec string) (*Pipeline, error) { return core.ParsePipeline(spec) }

// PipelineFor derives the default pipeline the given options would run.
func PipelineFor(opts CompileOptions) *Pipeline { return core.PipelineFor(opts) }

// CompilePipeline clones m and runs an explicit pass pipeline over it;
// set Pipeline.VerifyEach to verify the module between passes.
func CompilePipeline(m *Module, opts CompileOptions, pipe *Pipeline) (*Compilation, error) {
	return core.CompilePipeline(m, opts, pipe)
}

// RegisteredPasses lists every registered compiler pass, sorted by name.
func RegisteredPasses() []PassInfo { return core.RegisteredPasses() }

// AutoDetect scores speculative-reconvergence opportunities in m without
// modifying it (paper section 4.5).
func AutoDetect(m *Module) []Candidate {
	return core.DetectOpportunities(m, core.DefaultAutoDetectOptions())
}

// AutoAnnotate applies the automatic detector's profitable candidates as
// predictions on m, in place, and returns them.
func AutoAnnotate(m *Module) []Candidate {
	return core.AutoAnnotate(m, core.DefaultAutoDetectOptions())
}

// Simulator types. Event and EventSink form the generalized event
// stream behind the observability layer: attach a sink (a Profile, a
// TraceRecorder, or any EventSink) via RunConfig.Events.
type (
	RunConfig = simt.Config
	RunResult = simt.Result
	Metrics   = simt.Metrics
	Event     = simt.Event
	EventKind = simt.EventKind
	EventSink = simt.EventSink
	SinkFunc  = simt.SinkFunc
)

// Event kinds of the simulator event stream.
const (
	EvIssue          = simt.EvIssue
	EvBranch         = simt.EvBranch
	EvBarrierWait    = simt.EvBarrierWait
	EvBarrierRelease = simt.EvBarrierRelease
	EvCacheAccess    = simt.EvCacheAccess
	EvCall           = simt.EvCall
	EvRet            = simt.EvRet
)

// TeeSinks fans the event stream out to several sinks.
func TeeSinks(sinks ...EventSink) EventSink { return simt.TeeSinks(sinks...) }

// Observability layer (internal/obs): Profile is the nvprof-style
// per-PC profiler, TraceRecorder the Perfetto trace exporter. Both are
// EventSinks.
type (
	Profile       = obs.Profile
	ProfileStat   = obs.PCStat
	BranchStat    = obs.BranchStat
	BarrierStat   = obs.BarrierStat
	TraceRecorder = obs.TraceRecorder
)

// NewProfile builds an empty profile over the exact module that will
// run (the per-PC counter tables are indexed by the module's static
// instruction numbering).
func NewProfile(m *Module) *Profile { return obs.NewProfile(m) }

// NewTraceRecorder returns an event recorder whose WriteTrace renders
// Chrome trace-event JSON openable in ui.perfetto.dev.
func NewTraceRecorder() *TraceRecorder { return obs.NewTraceRecorder() }

// ProfileDiff compares two profiles of the same workload (typically the
// baseline and speculative builds) at block granularity.
func ProfileDiff(base, after *Profile) []obs.BlockDelta { return obs.Diff(base, after) }

// Scheduler policies for the warp scheduler.
const (
	PolicyMaxGroup   = simt.PolicyMaxGroup
	PolicyMinPC      = simt.PolicyMinPC
	PolicyRoundRobin = simt.PolicyRoundRobin
)

// Inter-warp scheduling policies (RunConfig.Sched): which resident warp
// issues next. The greedy-converge reference reproduces the paper's
// measurements; the others are legal-but-adversarial schedules for the
// stress rig (cmd/schedhunt), with SchedRandom seeded by
// RunConfig.SchedSeed.
const (
	SchedGreedyConverge = simt.SchedGreedyConverge
	SchedOldestFirst    = simt.SchedOldestFirst
	SchedYoungestFirst  = simt.SchedYoungestFirst
	SchedLooseFair      = simt.SchedLooseFair
	SchedRandom         = simt.SchedRandom
)

// ParsePolicy parses a group-pick policy name (maxgroup|minpc|roundrobin).
func ParsePolicy(s string) (simt.Policy, error) { return simt.ParsePolicy(s) }

// ParseSchedPolicy parses a warp-scheduler name
// (greedy|oldest|youngest|obe|random).
func ParseSchedPolicy(s string) (simt.SchedPolicy, error) { return simt.ParseSchedPolicy(s) }

// Execution engines: Volta-style independent thread scheduling with
// convergence barriers (the model the paper builds on), or the pre-Volta
// reconvergence stack where barriers do not exist (a baseline ablation).
const (
	ModelITS   = simt.ModelITS
	ModelStack = simt.ModelStack
)

// Inline expands every call to callee inside caller. Per the paper's
// section 6, inlining a common call removes the shared PC and drops any
// interprocedural prediction naming the callee.
func Inline(m *Module, caller, callee string) (sites, droppedPredictions int, err error) {
	return core.Inline(m, caller, callee)
}

// Outline extracts a block's body into a new function and replaces it
// with a call — the refactoring that *creates* a common-call
// reconvergence opportunity (section 6).
func Outline(m *Module, fn, block, newFunc string) error {
	return core.Outline(m, fn, block, newFunc)
}

// UnrollLoop partially unrolls a simple loop; per section 6, Loop Merge
// still applies afterwards and synchronizes once per unrolled group.
func UnrollLoop(m *Module, fn, header string, factor int) ([]string, error) {
	return core.UnrollLoop(m, fn, header, factor)
}

// Coarsen applies thread coarsening (section 3): each thread of the
// rewritten kernel executes `factor` consecutive tasks, creating the
// nested-loop shape Loop Merge needs. Launch with threads/factor threads.
func Coarsen(m *Module, fn string, factor int) error {
	return core.Coarsen(m, fn, factor)
}

// Robustness layer: fail-safe compilation, fault injection, typed
// simulator errors and the differential checker (see internal/diffcheck
// and cmd/diffhunt).
type (
	// SafeCompilation is CompileSafe's result: the verified speculative
	// build, or the PDOM baseline it fell back to (FellBack records which).
	SafeCompilation = core.SafeCompilation
	// SafetyError is the static barrier-safety verifier's rejection;
	// unwrap with errors.As.
	SafetyError = core.SafetyError
	// FaultPlan selects compile-layer barrier perturbations for
	// robustness testing (see ParseFaultPlan and CompileOptions.Faults).
	FaultPlan = core.FaultPlan
	// DeadlockError and BudgetError are the simulator's typed failures;
	// unwrap with errors.As to inspect blocked lanes or spent budgets.
	DeadlockError = simt.DeadlockError
	BudgetError   = simt.BudgetError
	// StarvationError (a runnable warp unissued past RunConfig.StarveLimit)
	// and WatchdogError (RunConfig.WallBudget exceeded) are the liveness
	// monitors' typed failures; unwrap with errors.As.
	StarvationError = simt.StarvationError
	WatchdogError   = simt.WatchdogError
	// DiffKernel, DiffOptions and DiffResult drive the differential
	// checker: any kernel compiled under both pipelines, run under
	// budgeted strict simulation, and compared for state equivalence.
	DiffKernel  = diffcheck.Kernel
	DiffOptions = diffcheck.Options
	DiffResult  = diffcheck.Result
)

// CompileSafe compiles with the static barrier-safety verifier in the
// pipeline, degrading to the PDOM baseline (with a "failsafe" remark)
// when the speculative build is rejected.
func CompileSafe(m *Module, opts CompileOptions) (*SafeCompilation, error) {
	return core.CompileSafe(m, opts)
}

// ParseFaultPlan parses a compile-layer fault spec such as
// "drop-cancel@2+swap-waits".
func ParseFaultPlan(spec string) (FaultPlan, error) { return core.ParseFaultPlan(spec) }

// DiffCheck differentially checks one kernel: baseline versus
// speculative build, both run to completion under a budget, final
// memory compared.
func DiffCheck(k DiffKernel, opts DiffOptions) DiffResult { return diffcheck.Check(k, opts) }

// DiffMinimize greedily shrinks a failing kernel to a minimal
// reproducer that still fails at the same stage.
func DiffMinimize(k DiffKernel, opts DiffOptions) (DiffKernel, DiffResult) {
	return diffcheck.Minimize(k, opts)
}

// Static analysis layer (internal/analyze, cmd/sasmvet): the
// barrier-state abstract interpreter, the unified SRxxxx diagnostics it
// and the safety verifier share, and the static SIMT-efficiency
// estimator.
type (
	// Diagnostic is the unified diagnostic record: stable SRxxxx code,
	// severity, position (function, block, instruction) and an optional
	// fix-it suggestion. core.Lint, the barrier-safety verifier and the
	// "analyze" pass all produce this type.
	Diagnostic = analyze.Diagnostic
	// DiagnosticSeverity orders note < warning < error.
	DiagnosticSeverity = analyze.Severity
	// AnalyzeOptions configures Analyze (barrier provenance, efficiency
	// note threshold).
	AnalyzeOptions = analyze.Options
	// AnalyzeReport is Analyze's full result: diagnostics plus the
	// per-kernel static SIMT-efficiency estimates.
	AnalyzeReport = analyze.Report
)

// Diagnostic severities.
const (
	SeverityNote    = analyze.SeverityNote
	SeverityWarning = analyze.SeverityWarning
	SeverityError   = analyze.SeverityError
)

// Analyze runs the full static analyzer — barrier pairing, the
// barrier-state abstract interpreter (deadlock detection), rejoin and
// conflict checks, hygiene warnings and the static SIMT-efficiency
// estimate — over a raw module. Compiled modules get barrier
// provenance via Diagnose or the "analyze" pass instead.
func Analyze(m *Module, opts AnalyzeOptions) *AnalyzeReport { return analyze.Analyze(m, opts) }

// Diagnose compiles m under opts with the "analyze" pass inserted
// before register allocation, returning the compilation with
// Diagnostics and StaticEff populated (provenance-aware: the class-
// gated checks see which barriers are speculative, exit or PDOM).
func Diagnose(m *Module, opts CompileOptions) (*Compilation, error) {
	return core.Diagnose(m, opts)
}

// StaticEfficiency returns the analyzer's per-kernel SIMT-efficiency
// prediction for every kernel in m — the screening estimate whose
// ranking tracks the simulator's Figure-7 ordering.
func StaticEfficiency(m *Module) map[string]float64 { return analyze.Efficiency(m) }

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log for editor and
// CI integration (the format cmd/sasmvet emits with -sarif).
func WriteSARIF(w io.Writer, toolName string, diags []Diagnostic) error {
	return analyze.WriteSARIF(w, toolName, diags)
}

// LintWarning is a diagnostic from Lint.
type LintWarning = core.LintWarning

// Lint runs static diagnostics (uninitialized reads, unreachable blocks,
// barrier hygiene) over the module.
func Lint(m *Module) []LintWarning { return core.Lint(m) }

// Automated repair layer (internal/repair, sasmvet -fix): the
// analysis-driven fixpoint engine that applies the machine edits error
// diagnostics carry (Diagnostic.Edits) and re-analyzes until clean or a
// stop condition.
type (
	// DiagnosticEdit is one machine-applicable edit attached to a
	// diagnostic: insert/delete a barrier instruction or replace a
	// barrier operand at a (function, block, index) anchor.
	DiagnosticEdit = analyze.Edit
	// RepairOptions configures Repair (barrier provenance, iteration
	// budget).
	RepairOptions = repair.Options
	// RepairReport is the typed fixpoint outcome: the pre-repair
	// findings, every applied edit, the codes resolved, the error
	// diagnostics remaining, and the give-up reason if any.
	RepairReport = repair.Report
	// RepairedRemark records a CompileSafe repair: the verifier
	// rejection that triggered it plus the fixpoint report.
	RepairedRemark = core.RepairedRemark
)

// Repair applies the analyzer's machine edits to m in place, iterating
// analysis and application to a fixpoint under a bounded budget with
// oscillation detection. Clone the module first to keep the original.
// CompileSafe calls this automatically (repair-then-reverify) before
// surrendering a rejected speculative build to the PDOM fail-safe;
// Options.NoRepair disables that.
func Repair(m *Module, opts RepairOptions) *RepairReport { return repair.Repair(m, opts) }

// RepairableCode reports whether diagnostics with this SR code can
// carry machine edits at all (SR1003's lost wait, for example, cannot:
// its sound position is unreconstructible, so those kernels fall back).
func RepairableCode(code analyze.Code) bool { return repair.Repairable(code) }

// DiagnoseRepaired is Diagnose with the repair pass in front of the
// analyzer: the compilation's RepairReport records the fixpoint and
// Diagnostics reflect the repaired module.
func DiagnoseRepaired(m *Module, opts CompileOptions) (*Compilation, error) {
	return core.DiagnoseRepaired(m, opts)
}

// DOT renders a function's CFG in Graphviz dot syntax, with prediction
// annotations drawn as dashed edges.
func DOT(f *Function) string { return ir.DOT(f) }

// Run launches a compiled module on the SIMT simulator.
func Run(m *Module, cfg RunConfig) (*RunResult, error) { return simt.Run(m, cfg) }

// Machine is a reusable simulation context: one compiled module plus a
// fixed launch shape, relaunchable via Machine.Run with new seeds and
// memory images at near-zero steady-state allocation cost. Sweep loops
// (threshold studies, schedule exploration, service workloads) should
// build one Machine per compilation instead of calling Run per point.
type Machine = simt.Machine

// NewMachine builds a reusable simulation context for m under cfg's
// launch shape. Subsequent Machine.Run calls may vary Seed, Memory,
// budgets and sinks, but not the shape (kernel, thread/grid geometry,
// policy, model, cache).
func NewMachine(m *Module, cfg RunConfig) (*Machine, error) { return simt.NewMachine(m, cfg) }

// Compile caching (internal/ccache): a content-addressed,
// byte-budgeted LRU memoizing Compile/CompileSafe/Diagnose results
// keyed by (canonical IR, pipeline spec, options fingerprint). All
// methods on a nil *CompileCache forward to the direct compile path,
// so a cache pointer can be plumbed unconditionally.
type (
	CompileCache      = ccache.Cache
	CompileCacheStats = ccache.Stats
)

// NewCompileCache returns an empty compile cache bounded to maxBytes of
// estimated retained compilation size (0 selects the default budget).
func NewCompileCache(maxBytes int64) *CompileCache { return ccache.New(maxBytes) }

// UseCompileCache installs (or, with nil, removes) the compile cache
// that every experiment driver in this package — the Figure functions,
// RunFunnel — compiles through, returning the previous cache. Read
// hit/miss counters via DriverCacheStats.
func UseCompileCache(c *CompileCache) *CompileCache { return harness.UseCompileCache(c) }

// DriverCacheStats snapshots the experiment drivers' installed compile
// cache counters (zero when none is installed).
func DriverCacheStats() CompileCacheStats { return harness.CompileCacheStats() }

// Workload access: the paper's benchmark suite (Table 2).
type (
	Workload         = workloads.Workload
	WorkloadInstance = workloads.Instance
	WorkloadConfig   = workloads.BuildConfig
)

// Workloads returns every bundled benchmark.
func Workloads() []*Workload { return workloads.All() }

// WorkloadByName returns one bundled benchmark by name.
func WorkloadByName(name string) (*Workload, error) { return workloads.Get(name) }

// Experiment drivers: each reproduces one figure of the paper.
type (
	Comparison     = harness.Comparison
	ThresholdPoint = harness.ThresholdPoint
	FunnelResult   = harness.FunnelResult
)

// The experiment drivers fan their independent compile+simulate jobs
// out across a worker pool sized to GOMAXPROCS; results are identical
// to a serial run (see internal/harness). Use the FigureNP variants to
// bound the pool explicitly (1 forces serial execution).

// Figure7 measures SIMT efficiency before/after for the annotated suite.
func Figure7(cfg WorkloadConfig) ([]Comparison, error) { return harness.Figure7(cfg, 0) }

// Figure7P is Figure7 with an explicit worker-pool bound.
func Figure7P(cfg WorkloadConfig, parallelism int) ([]Comparison, error) {
	return harness.Figure7(cfg, parallelism)
}

// Figure8 is the Figure 7 experiment viewed as efficiency improvement
// versus speedup.
func Figure8(cfg WorkloadConfig) ([]Comparison, error) { return harness.Figure8(cfg, 0) }

// Figure9 sweeps the soft-barrier threshold for one workload.
func Figure9(name string, cfg WorkloadConfig, thresholds []int) ([]ThresholdPoint, error) {
	return harness.Figure9(name, cfg, thresholds, 0)
}

// Figure9P is Figure9 with an explicit worker-pool bound.
func Figure9P(name string, cfg WorkloadConfig, thresholds []int, parallelism int) ([]ThresholdPoint, error) {
	return harness.Figure9(name, cfg, thresholds, parallelism)
}

// Figure10 measures automatic speculative reconvergence on the
// auto-detected kernels.
func Figure10(cfg WorkloadConfig) ([]Comparison, error) { return harness.Figure10(cfg, 0) }

// Figure10P is Figure10 with an explicit worker-pool bound.
func Figure10P(cfg WorkloadConfig, parallelism int) ([]Comparison, error) {
	return harness.Figure10(cfg, parallelism)
}

// RunFunnel reproduces the section 5.4 application-population study.
func RunFunnel(apps int, seed uint64) (*FunnelResult, error) {
	return harness.RunFunnel(apps, seed, 0)
}

// RunFunnelP is RunFunnel with an explicit worker-pool bound.
func RunFunnelP(apps int, seed uint64, parallelism int) (*FunnelResult, error) {
	return harness.RunFunnel(apps, seed, parallelism)
}
