// Benchmarks regenerating every results figure of the paper. Each bench
// iteration performs the complete simulated experiment and reports the
// paper's metrics via testing.B custom metrics:
//
//	simt_eff_%      SIMT efficiency of the measured build
//	sim_cycles      modeled runtime of the measured build
//	speedup_x       baseline cycles / optimized cycles
//	eff_gain_x      optimized efficiency / baseline efficiency
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// BenchmarkFig1 exercises the Listing 1 / Figure 1 motivating kernel;
// BenchmarkFig7 and BenchmarkFig8 cover the programmer-annotated suite;
// BenchmarkFig9 sweeps soft-barrier thresholds for PathTracer and
// XSBench; BenchmarkFig10 covers automatic detection plus the section
// 5.4 population funnel; BenchmarkCompile measures the compiler passes
// themselves (Figures 4-6 machinery).
package specrecon_test

import (
	"flag"
	"testing"

	"specrecon"
	"specrecon/internal/corpus"
)

// runOnce compiles and simulates one build of a workload instance.
func runOnce(b *testing.B, inst *specrecon.WorkloadInstance, opts specrecon.CompileOptions) *specrecon.RunResult {
	b.Helper()
	comp, err := specrecon.Compile(inst.Module, opts)
	if err != nil {
		b.Fatal(err)
	}
	res, err := specrecon.Run(comp.Module, specrecon.RunConfig{
		Kernel:  inst.Kernel,
		Threads: inst.Threads,
		Seed:    inst.Seed,
		Memory:  inst.Memory,
		Strict:  true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func buildNamed(b *testing.B, name string) *specrecon.WorkloadInstance {
	b.Helper()
	w, err := specrecon.WorkloadByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return w.Build(specrecon.WorkloadConfig{})
}

// BenchmarkFig1 runs the paper's motivating iteration-delay kernel
// (Figure 1 / Listing 1) under PDOM and speculative reconvergence.
func BenchmarkFig1(b *testing.B) {
	mod := buildListing1Kernel()
	for _, mode := range []struct {
		name string
		opts specrecon.CompileOptions
	}{
		{"pdom", specrecon.BaselineOptions()},
		{"specrecon", specrecon.SpecReconOptions()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var eff float64
			var cycles int64
			for i := 0; i < b.N; i++ {
				comp, err := specrecon.Compile(mod, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				res, err := specrecon.Run(comp.Module, specrecon.RunConfig{Kernel: "kernel", Seed: 1, Strict: true})
				if err != nil {
					b.Fatal(err)
				}
				eff = res.Metrics.SIMTEfficiency()
				cycles = res.Metrics.Cycles
			}
			b.ReportMetric(100*eff, "simt_eff_%")
			b.ReportMetric(float64(cycles), "sim_cycles")
		})
	}
}

// buildListing1Kernel reconstructs Listing 1 with the facade API.
func buildListing1Kernel() *specrecon.Module {
	mod := specrecon.NewModule("listing1")
	mod.MemWords = 128
	fn := mod.NewFunction("kernel")
	bd := specrecon.NewBuilder(fn)

	entry := fn.NewBlock("entry")
	header := fn.NewBlock("header")
	body := fn.NewBlock("body")
	expensive := fn.NewBlock("expensive")
	epilog := fn.NewBlock("epilog")
	done := fn.NewBlock("done")

	bd.SetBlock(entry)
	tid := bd.Tid()
	i := bd.Reg()
	bd.ConstTo(i, 0)
	n := bd.Const(160)
	acc := bd.FConst(0)
	bd.Predict(expensive)
	bd.Br(header)

	bd.SetBlock(header)
	bd.CBr(bd.SetLT(i, n), body, done)

	bd.SetBlock(body)
	p := bd.FAddI(bd.ItoF(i), 0.5)
	take := bd.FSetLTI(bd.FRand(), 0.2)
	bd.CBr(take, expensive, epilog)

	bd.SetBlock(expensive)
	x := bd.FAddI(acc, 1.0)
	for k := 0; k < 20; k++ {
		x = bd.FMA(x, x, p)
		x = bd.FSqrt(bd.FAbs(x))
	}
	bd.FMovTo(acc, bd.FAdd(acc, x))
	bd.Br(epilog)

	bd.SetBlock(epilog)
	bd.MovTo(i, bd.AddI(i, 1))
	bd.Br(header)

	bd.SetBlock(done)
	bd.FStore(tid, 0, acc)
	bd.Exit()
	return mod
}

// annotatedSuite lists the Figure 7/8 benchmarks.
var annotatedSuite = []string{
	"rsbench", "xsbench", "mcb", "pathtracer", "mc-gpu", "mummer", "gpu-mcml", "callmicro",
}

// BenchmarkFig7 regenerates the Figure 7 bars: SIMT efficiency of the
// baseline and speculative builds for every annotated benchmark.
func BenchmarkFig7(b *testing.B) {
	for _, name := range annotatedSuite {
		name := name
		b.Run(name+"/baseline", func(b *testing.B) {
			inst := buildNamed(b, name)
			var eff float64
			for i := 0; i < b.N; i++ {
				eff = runOnce(b, inst, specrecon.BaselineOptions()).Metrics.SIMTEfficiency()
			}
			b.ReportMetric(100*eff, "simt_eff_%")
		})
		b.Run(name+"/specrecon", func(b *testing.B) {
			inst := buildNamed(b, name)
			var eff float64
			for i := 0; i < b.N; i++ {
				eff = runOnce(b, inst, specrecon.SpecReconOptions()).Metrics.SIMTEfficiency()
			}
			b.ReportMetric(100*eff, "simt_eff_%")
		})
	}
}

// BenchmarkFig8 regenerates the Figure 8 series: relative SIMT
// efficiency improvement and speedup per benchmark.
func BenchmarkFig8(b *testing.B) {
	for _, name := range annotatedSuite {
		name := name
		b.Run(name, func(b *testing.B) {
			inst := buildNamed(b, name)
			var effGain, speedup float64
			for i := 0; i < b.N; i++ {
				base := runOnce(b, inst, specrecon.BaselineOptions()).Metrics
				spec := runOnce(b, inst, specrecon.SpecReconOptions()).Metrics
				effGain = spec.SIMTEfficiency() / base.SIMTEfficiency()
				speedup = float64(base.Cycles) / float64(spec.Cycles)
			}
			b.ReportMetric(effGain, "eff_gain_x")
			b.ReportMetric(speedup, "speedup_x")
		})
	}
}

// BenchmarkFig9 regenerates the Figure 9 threshold sweeps for PathTracer
// and XSBench.
func BenchmarkFig9(b *testing.B) {
	for _, name := range []string{"pathtracer", "xsbench"} {
		name := name
		for _, t := range []int{1, 8, 16, 24, 32} {
			t := t
			b.Run(benchName(name, t), func(b *testing.B) {
				inst := buildNamed(b, name)
				base := runOnce(b, inst, specrecon.BaselineOptions()).Metrics
				var eff, speedup float64
				for i := 0; i < b.N; i++ {
					opts := specrecon.SpecReconOptions()
					opts.ThresholdOverride = t
					spec := runOnce(b, inst, opts).Metrics
					eff = spec.SIMTEfficiency()
					speedup = float64(base.Cycles) / float64(spec.Cycles)
				}
				b.ReportMetric(100*eff, "simt_eff_%")
				b.ReportMetric(speedup, "speedup_x")
			})
		}
	}
}

func benchName(name string, t int) string {
	return name + "/threshold=" + itoa(t)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkFig10 regenerates the automatic-detection upside bars and the
// section 5.4 population funnel.
func BenchmarkFig10(b *testing.B) {
	for _, name := range []string{"optix-ao", "optix-path", "optix-shadow", "meiyamd5"} {
		name := name
		b.Run(name, func(b *testing.B) {
			inst := buildNamed(b, name)
			var eff, speedup float64
			for i := 0; i < b.N; i++ {
				base := runOnce(b, inst, specrecon.BaselineOptions()).Metrics
				auto := inst.Module.Clone()
				specrecon.AutoAnnotate(auto)
				comp, err := specrecon.Compile(auto, specrecon.SpecReconOptions())
				if err != nil {
					b.Fatal(err)
				}
				res, err := specrecon.Run(comp.Module, specrecon.RunConfig{
					Kernel: inst.Kernel, Threads: inst.Threads, Seed: inst.Seed,
					Memory: inst.Memory, Strict: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				eff = res.Metrics.SIMTEfficiency()
				speedup = float64(base.Cycles) / float64(res.Metrics.Cycles)
			}
			b.ReportMetric(100*eff, "simt_eff_%")
			b.ReportMetric(speedup, "speedup_x")
		})
	}
	b.Run("funnel", func(b *testing.B) {
		var detected, significant int
		for i := 0; i < b.N; i++ {
			fr, err := specrecon.RunFunnel(520, 42)
			if err != nil {
				b.Fatal(err)
			}
			detected, significant = fr.Detected, fr.Significant
		}
		b.ReportMetric(float64(detected), "detected")
		b.ReportMetric(float64(significant), "significant")
	})
}

// BenchmarkAblation isolates the design choices DESIGN.md calls out:
// deconfliction strategy (section 4.3 discusses the static/dynamic
// tradeoff), warp scheduler policy, and the execution model (Volta ITS
// versus the pre-Volta reconvergence stack, where speculative
// reconvergence cannot be expressed).
func BenchmarkAblation(b *testing.B) {
	b.Run("deconfliction", func(b *testing.B) {
		for _, mode := range []struct {
			name string
			mode specrecon.CompileOptions
		}{
			{"dynamic", specrecon.SpecReconOptions()},
			{"static", func() specrecon.CompileOptions {
				o := specrecon.SpecReconOptions()
				o.Deconflict = specrecon.DeconflictStatic
				return o
			}()},
		} {
			mode := mode
			b.Run(mode.name, func(b *testing.B) {
				inst := buildNamed(b, "mcb")
				base := runOnce(b, inst, specrecon.BaselineOptions()).Metrics
				var speedup float64
				var issues int64
				for i := 0; i < b.N; i++ {
					m := runOnce(b, inst, mode.mode).Metrics
					speedup = float64(base.Cycles) / float64(m.Cycles)
					issues = m.Issues
				}
				b.ReportMetric(speedup, "speedup_x")
				b.ReportMetric(float64(issues), "sim_issues")
			})
		}
	})

	b.Run("policy", func(b *testing.B) {
		for _, pol := range []struct {
			name   string
			policy specrecon.RunConfig
		}{
			{"maxgroup", specrecon.RunConfig{Policy: specrecon.PolicyMaxGroup}},
			{"minpc", specrecon.RunConfig{Policy: specrecon.PolicyMinPC}},
			{"roundrobin", specrecon.RunConfig{Policy: specrecon.PolicyRoundRobin}},
		} {
			pol := pol
			b.Run(pol.name, func(b *testing.B) {
				inst := buildNamed(b, "mcb")
				comp, err := specrecon.Compile(inst.Module, specrecon.SpecReconOptions())
				if err != nil {
					b.Fatal(err)
				}
				var eff float64
				for i := 0; i < b.N; i++ {
					res, err := specrecon.Run(comp.Module, specrecon.RunConfig{
						Kernel: inst.Kernel, Threads: inst.Threads, Seed: inst.Seed,
						Memory: inst.Memory, Policy: pol.policy.Policy, Strict: true,
					})
					if err != nil {
						b.Fatal(err)
					}
					eff = res.Metrics.SIMTEfficiency()
				}
				b.ReportMetric(100*eff, "simt_eff_%")
			})
		}
	})

	b.Run("engine", func(b *testing.B) {
		for _, eng := range []struct {
			name  string
			model specrecon.RunConfig
		}{
			{"its", specrecon.RunConfig{Model: specrecon.ModelITS}},
			{"prevolta-stack", specrecon.RunConfig{Model: specrecon.ModelStack}},
		} {
			eng := eng
			b.Run(eng.name, func(b *testing.B) {
				inst := buildNamed(b, "mcb")
				comp, err := specrecon.Compile(inst.Module, specrecon.SpecReconOptions())
				if err != nil {
					b.Fatal(err)
				}
				var eff float64
				var cycles int64
				for i := 0; i < b.N; i++ {
					res, err := specrecon.Run(comp.Module, specrecon.RunConfig{
						Kernel: inst.Kernel, Threads: inst.Threads, Seed: inst.Seed,
						Memory: inst.Memory, Model: eng.model.Model,
					})
					if err != nil {
						b.Fatal(err)
					}
					eff = res.Metrics.SIMTEfficiency()
					cycles = res.Metrics.Cycles
				}
				b.ReportMetric(100*eff, "simt_eff_%")
				b.ReportMetric(float64(cycles), "sim_cycles")
			})
		}
	})
}

// BenchmarkCompile measures the compiler pipeline itself — the pass
// machinery of Figures 4-6 — on each workload module, one sub-benchmark
// per pipeline so compile-time regressions are attributable to a pass.
// The verify-each variant prices the debug-mode inter-pass verifier.
func BenchmarkCompile(b *testing.B) {
	pipelines := []struct {
		name       string
		spec       string
		verifyEach bool
	}{
		{name: "baseline", spec: "pdom,alloc"},
		{name: "specrecon", spec: "pdom,predict,deconflict=dynamic,alloc"},
		{name: "specrecon-static", spec: "pdom,predict,deconflict=static,alloc"},
		{name: "specrecon-verify-each", spec: "pdom,predict,deconflict=dynamic,alloc", verifyEach: true},
	}
	for _, name := range annotatedSuite {
		name := name
		for _, pl := range pipelines {
			pl := pl
			b.Run(name+"/"+pl.name, func(b *testing.B) {
				inst := buildNamed(b, name)
				pipe, err := specrecon.ParsePipeline(pl.spec)
				if err != nil {
					b.Fatal(err)
				}
				pipe.VerifyEach = pl.verifyEach
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := specrecon.CompilePipeline(inst.Module, specrecon.SpecReconOptions(), pipe); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLaunchReuse measures the steady-state cost of relaunching
// one compilation — the inner loop of every sweep — through a reusable
// specrecon.Machine. The pre capture (testdata/bench_sweep_pre.txt) ran
// the same launches through fresh specrecon.Run calls; the arena keeps
// warp scratch, per-SM machines, event buffers and metrics alive, so
// allocs/op is the per-launch arena overhead, not the construction cost,
// and the 8-SM variant's bytes/op no longer scales with the full
// memory-image size (copy-on-write SM memory pays per dirty page).
func BenchmarkLaunchReuse(b *testing.B) {
	b.Run("flat", func(b *testing.B) {
		inst := buildNamed(b, "xsbench")
		comp, err := specrecon.Compile(inst.Module, specrecon.SpecReconOptions())
		if err != nil {
			b.Fatal(err)
		}
		cfg := specrecon.RunConfig{
			Kernel: inst.Kernel, Threads: inst.Threads, Seed: inst.Seed,
			Memory: inst.Memory, Strict: true,
		}
		m, err := specrecon.NewMachine(comp.Module, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sm8", func(b *testing.B) {
		w, err := specrecon.WorkloadByName("rsbench")
		if err != nil {
			b.Fatal(err)
		}
		inst := w.Build(specrecon.WorkloadConfig{Grid: 16, CTASize: 64, SMs: 8, Workers: 1})
		comp, err := specrecon.Compile(inst.Module, specrecon.SpecReconOptions())
		if err != nil {
			b.Fatal(err)
		}
		cfg := specrecon.RunConfig{
			Kernel: inst.Kernel, Seed: inst.Seed, Memory: inst.Memory, Strict: true,
			Grid: inst.Grid, CTASize: inst.CTASize, SMs: inst.SMs, Workers: inst.Workers,
		}
		m, err := specrecon.NewMachine(comp.Module, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCorpusSweep measures a diagnostics sweep over a synthetic
// corpus — 40 generated applications, each compiled under the baseline
// and two speculative threshold points — through the content-addressed
// compile cache. The pre capture ran the identical sweep with direct
// compilation; with the cache installed, every iteration after the first
// is pure hits, so ns/op converges to the lookup cost and the pre/post
// ratio is the per-point compile tax a threshold study stops paying.
func BenchmarkCorpusSweep(b *testing.B) {
	b.Run("apps40", func(b *testing.B) {
		apps := corpus.Generate(40, 42)
		at := func(t int) specrecon.CompileOptions {
			o := specrecon.SpecReconOptions()
			o.ThresholdOverride = t
			return o
		}
		variants := []specrecon.CompileOptions{specrecon.BaselineOptions(), at(8), at(24)}
		cache := specrecon.NewCompileCache(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, app := range apps {
				for _, opts := range variants {
					if _, err := cache.Diagnose(app.Module, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}

// harnessJ bounds the worker pool of BenchmarkHarness
// (0 = GOMAXPROCS, 1 = serial):
//
//	go test -bench Harness -harness.j 8
var harnessJ = flag.Int("harness.j", 0, "worker-pool size for BenchmarkHarness (0 = GOMAXPROCS)")

// BenchmarkHarness measures the experiment drivers end to end — the
// paths `figures` and `make figures` spend their time in — under the
// worker pool. Parallel speedup only shows on multi-core machines; the
// results themselves are identical at any -harness.j.
func BenchmarkHarness(b *testing.B) {
	b.Run("figure7", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := specrecon.Figure7P(specrecon.WorkloadConfig{}, *harnessJ); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("figure9/pathtracer", func(b *testing.B) {
		thresholds := []int{1, 4, 8, 12, 16, 20, 24, 28, 32}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := specrecon.Figure9P("pathtracer", specrecon.WorkloadConfig{}, thresholds, *harnessJ); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("funnel60", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := specrecon.RunFunnelP(60, 42, *harnessJ); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGPUScale measures the GPU-scale engine: the speculative build
// of RSBench launched as a fixed 16-CTA grid while the SM count and the
// worker shards scale — the strong-scaling capture behind BENCH_6.json.
// Modeled sim_cycles drop as the CTAs spread over more SMs (each SM runs
// its share concurrently and the launch takes the slowest SM's cycles);
// wall-clock gains from -workers only appear on multi-core machines, and
// the results are byte-identical at any worker count.
func BenchmarkGPUScale(b *testing.B) {
	w, err := specrecon.WorkloadByName("rsbench")
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name         string
		sms, workers int
	}{
		{"sm1", 1, 1},
		{"sm4-serial", 4, 1},
		{"sm4-sharded", 4, 4},
		{"sm8-sharded", 8, 8},
	} {
		b.Run(tc.name, func(b *testing.B) {
			inst := w.Build(specrecon.WorkloadConfig{
				Grid: 16, CTASize: 64, SMs: tc.sms, Workers: tc.workers,
			})
			comp, err := specrecon.Compile(inst.Module, specrecon.SpecReconOptions())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			var res *specrecon.RunResult
			for i := 0; i < b.N; i++ {
				res, err = specrecon.Run(comp.Module, specrecon.RunConfig{
					Kernel: inst.Kernel, Seed: inst.Seed, Memory: inst.Memory, Strict: true,
					Grid: inst.Grid, CTASize: inst.CTASize, SMs: inst.SMs, Workers: inst.Workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Metrics.Cycles), "sim_cycles")
			b.ReportMetric(float64(res.Metrics.TotalSMCycles), "total_sm_cycles")
			b.ReportMetric(100*res.Metrics.SIMTEfficiency(), "simt_eff_%")
		})
	}
}
