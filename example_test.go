package specrecon_test

import (
	"fmt"
	"log"

	"specrecon"
)

// ExampleCompile builds the paper's Listing 1 pattern, marks the
// expensive block as a speculative reconvergence point, and compares the
// baseline and optimized builds.
func ExampleCompile() {
	mod := specrecon.NewModule("example")
	mod.MemWords = 64
	fn := mod.NewFunction("kernel")
	b := specrecon.NewBuilder(fn)

	entry := fn.NewBlock("entry")
	header := fn.NewBlock("header")
	body := fn.NewBlock("body")
	hot := fn.NewBlock("hot")
	epilog := fn.NewBlock("epilog")
	done := fn.NewBlock("done")

	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Reg()
	b.ConstTo(i, 0)
	n := b.Const(100)
	acc := b.FConst(0)
	b.Predict(hot) // the paper's Predict(L1): collect lanes at `hot`
	b.Br(header)

	b.SetBlock(header)
	b.CBr(b.SetLT(i, n), body, done)

	b.SetBlock(body)
	take := b.FSetLTI(b.FRand(), 0.25)
	b.CBr(take, hot, epilog)

	b.SetBlock(hot)
	x := b.FAddI(acc, 1.0)
	for k := 0; k < 16; k++ {
		x = b.FMA(x, x, acc)
		x = b.FSqrt(b.FAbs(x))
	}
	b.FMovTo(acc, b.FAdd(acc, x))
	b.Br(epilog)

	b.SetBlock(epilog)
	b.MovTo(i, b.AddI(i, 1))
	b.Br(header)

	b.SetBlock(done)
	b.FStore(tid, 0, acc)
	b.Exit()

	run := func(opts specrecon.CompileOptions) float64 {
		comp, err := specrecon.Compile(mod, opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := specrecon.Run(comp.Module, specrecon.RunConfig{Kernel: "kernel", Seed: 1, Strict: true})
		if err != nil {
			log.Fatal(err)
		}
		return res.Metrics.SIMTEfficiency()
	}
	base := run(specrecon.BaselineOptions())
	spec := run(specrecon.SpecReconOptions())
	fmt.Printf("efficiency improved: %v\n", spec > base)
	// Output: efficiency improved: true
}

// ExampleParseModule round-trips a kernel through the textual format.
func ExampleParseModule() {
	src := `module tiny memwords=64

func @kernel nregs=2 nfregs=0 {
entry:
  tid r0
  const r1, #7
  st [r0], r1
  exit
}
`
	mod, err := specrecon.ParseModule(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := specrecon.Run(mod, specrecon.RunConfig{Kernel: "kernel", Strict: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Memory[0], res.Memory[31])
	// Output: 7 7
}

// ExampleAutoDetect runs the section 4.5 detector on the un-annotated
// MeiyaMD5 benchmark.
func ExampleAutoDetect() {
	w, err := specrecon.WorkloadByName("meiyamd5")
	if err != nil {
		log.Fatal(err)
	}
	inst := w.Build(specrecon.WorkloadConfig{Tasks: 4})
	for _, c := range specrecon.AutoDetect(inst.Module) {
		fmt.Printf("%v at %s, label %s\n", c.Kind, c.At.Name, c.Label.Name)
	}
	// Output: loop-merge at next_candidate, label round_body
}
