package specrecon_test

import (
	"strings"
	"testing"

	"specrecon"
)

// TestFacadeEndToEnd drives the whole public API surface: build a kernel
// with the builder, print it, re-parse it, compile both variants, run
// them, and check the metrics.
func TestFacadeEndToEnd(t *testing.T) {
	mod := specrecon.NewModule("facade")
	mod.MemWords = 128
	fn := mod.NewFunction("kernel")
	b := specrecon.NewBuilder(fn)

	entry := fn.NewBlock("entry")
	header := fn.NewBlock("header")
	body := fn.NewBlock("body")
	hot := fn.NewBlock("hot")
	epilog := fn.NewBlock("epilog")
	done := fn.NewBlock("done")

	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Reg()
	b.ConstTo(i, 0)
	n := b.Const(200)
	acc := b.FConst(0)
	b.Predict(hot)
	b.Br(header)

	b.SetBlock(header)
	b.CBr(b.SetLT(i, n), body, done)

	b.SetBlock(body)
	take := b.FSetLTI(b.FRand(), 0.2)
	b.CBr(take, hot, epilog)

	b.SetBlock(hot)
	x := b.FAddI(acc, 1.0)
	for k := 0; k < 24; k++ {
		x = b.FMA(x, x, acc)
		x = b.FSqrt(b.FAbs(x))
	}
	b.FMovTo(acc, b.FAdd(acc, x))
	b.Br(epilog)

	b.SetBlock(epilog)
	b.MovTo(i, b.AddI(i, 1))
	b.Br(header)

	b.SetBlock(done)
	b.FStore(tid, 0, acc)
	b.Exit()

	if err := specrecon.VerifyModule(mod); err != nil {
		t.Fatal(err)
	}

	// Textual round trip through the facade.
	text := specrecon.PrintModule(mod)
	if !strings.Contains(text, ".predict hot") {
		t.Errorf("printed module lacks the prediction directive:\n%s", text)
	}
	reparsed, err := specrecon.ParseModule(text)
	if err != nil {
		t.Fatalf("ParseModule: %v", err)
	}
	if specrecon.PrintModule(reparsed) != text {
		t.Error("facade parse/print round trip unstable")
	}

	runWith := func(m *specrecon.Module, opts specrecon.CompileOptions) *specrecon.RunResult {
		comp, err := specrecon.Compile(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := specrecon.Run(comp.Module, specrecon.RunConfig{Kernel: "kernel", Seed: 4, Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	base := runWith(mod, specrecon.BaselineOptions())
	spec := runWith(reparsed, specrecon.SpecReconOptions()) // the reparsed module is equivalent
	if spec.Metrics.SIMTEfficiency() <= base.Metrics.SIMTEfficiency() {
		t.Errorf("facade spec build did not improve efficiency: %.3f -> %.3f",
			base.Metrics.SIMTEfficiency(), spec.Metrics.SIMTEfficiency())
	}
	for i := range base.Memory {
		if base.Memory[i] != spec.Memory[i] {
			t.Fatalf("facade builds disagree at word %d", i)
		}
	}
}

// TestFacadeWorkloads exercises workload lookup and the experiment entry
// points at reduced scale.
func TestFacadeWorkloads(t *testing.T) {
	all := specrecon.Workloads()
	if len(all) < 10 {
		t.Fatalf("bundled workloads = %d, want the full Table 2 suite", len(all))
	}
	if _, err := specrecon.WorkloadByName("rsbench"); err != nil {
		t.Fatal(err)
	}
	if _, err := specrecon.WorkloadByName("definitely-not-real"); err == nil {
		t.Error("unknown workload lookup should fail")
	}

	pts, err := specrecon.Figure9("pathtracer", specrecon.WorkloadConfig{Tasks: 4}, []int{1, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("sweep points = %d", len(pts))
	}

	fr, err := specrecon.RunFunnel(60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Studied != 60 {
		t.Fatalf("funnel studied = %d", fr.Studied)
	}
}

// TestFacadeAutoDetect checks the detector surface.
func TestFacadeAutoDetect(t *testing.T) {
	w, err := specrecon.WorkloadByName("meiyamd5")
	if err != nil {
		t.Fatal(err)
	}
	inst := w.Build(specrecon.WorkloadConfig{Tasks: 4})
	cands := specrecon.AutoDetect(inst.Module)
	if len(cands) == 0 {
		t.Fatal("no candidates on meiyamd5")
	}
	mod := inst.Module.Clone()
	applied := specrecon.AutoAnnotate(mod)
	if len(applied) == 0 {
		t.Fatal("nothing applied on meiyamd5")
	}
}
