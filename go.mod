module specrecon

go 1.22
